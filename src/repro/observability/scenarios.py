"""Named, seeded scenarios for ``repro trace``.

Each scenario builds a run with a :class:`~repro.observability.recorder.
RunRecorder` attached from the first step, executes it, and returns the
recorder plus a JSON-ready context summary.  All of them are pure
functions of ``(name, seed)``: running one twice yields byte-identical
JSONL exports, which is exactly what the CLI's determinism contract (and
the double-run tests) assert.

Scenarios
---------
``run``
    A contended synthetic workload on the centralised scheduler under
    unconstrained ``min-cost`` selection — blocks, deadlocks, victim
    selections, and rollbacks in every trace.
``chaos``
    A :func:`~repro.resilience.chaos.chaos_run` with one injected crash:
    WAL appends and checkpoints, the CRASH event, recovery, and the
    recorder re-attached across segments into one continuous stream.
``overload``
    An :func:`~repro.admission.stress.overload_run` through the full
    admission layer: submit/admit events, AIMD window moves, deadline
    rungs, watchdog immunity.
``figure2-immunity``
    The paper's Figure 2 livelock (mutual preemption under unordered
    ``min-cost``; T2 and T4 trade rollbacks in this reproduction) with
    the starvation watchdog armed: the span timeline shows the immunity
    grant breaking the mutual preemption so the run commits instead of
    spinning.
``distributed``
    A five-site replicated deployment (rf=2, consistent-hash view) under
    cross-site wound-wait — the ``repro chaos --sites 5 --replicate 2``
    topology with a recorder attached.  Wounds cross site boundaries as
    messages before the victim's partial rollback, so this is the seeded
    reproduction behind ``repro trace distributed --txn <id>``:
    a cross-site timeline whose rollback cause links name the
    ``requester home -> victim home`` link that carried the wound.
"""

from __future__ import annotations

from typing import Any

from .recorder import RunRecorder

#: Selectable scenario names, in documentation order.
SCENARIOS: tuple[str, ...] = (
    "run", "chaos", "overload", "figure2-immunity", "distributed",
)


def record_scenario(
    name: str = "run", seed: int = 0, sample_every: int = 25
) -> tuple[RunRecorder, dict[str, Any]]:
    """Run scenario *name* from *seed* with a recorder attached.

    Returns ``(recorder, context)`` where ``context`` is a
    JSON-serializable description of what the run did (scenario-specific
    headline numbers; the event stream itself lives on the recorder).
    """
    if name == "run":
        return _scenario_run(seed, sample_every)
    if name == "chaos":
        return _scenario_chaos(seed, sample_every)
    if name == "overload":
        return _scenario_overload(seed, sample_every)
    if name == "figure2-immunity":
        return _scenario_figure2(seed, sample_every)
    if name == "distributed":
        return _scenario_distributed(seed, sample_every)
    raise ValueError(
        f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
    )


def _scenario_run(
    seed: int, sample_every: int
) -> tuple[RunRecorder, dict[str, Any]]:
    from ..core.scheduler import Scheduler
    from ..simulation.engine import SimulationEngine
    from ..simulation.interleaving import RandomInterleaving
    from ..simulation.workload import WorkloadConfig, generate_workload

    database, programs = generate_workload(
        WorkloadConfig(
            n_transactions=10,
            n_entities=6,
            locks_per_txn=(2, 4),
            write_ratio=1.0,
            skew="hotspot",
        ),
        seed=seed,
    )
    scheduler = Scheduler(database, strategy="mcs", policy="min-cost")
    engine = SimulationEngine(
        scheduler,
        RandomInterleaving(seed=seed),
        max_steps=200_000,
        livelock_window=20_000,
    )
    recorder = RunRecorder(sample_every=sample_every).attach(engine)
    for program in programs:
        engine.add(program)
    result = engine.run()
    return recorder, {
        "scenario": "run",
        "seed": seed,
        "steps": result.steps,
        "committed": result.committed,
        "livelock": result.livelock_detected,
        "metrics": result.metrics.summary(),
    }


def _scenario_chaos(
    seed: int, sample_every: int
) -> tuple[RunRecorder, dict[str, Any]]:
    from ..resilience.chaos import chaos_run
    from ..simulation.workload import WorkloadConfig

    recorder = RunRecorder(sample_every=sample_every)
    outcome = chaos_run(
        WorkloadConfig(
            n_transactions=5,
            n_entities=6,
            locks_per_txn=(2, 4),
            write_ratio=1.0,
            skew="uniform",
        ),
        workload_seed=seed,
        chaos_seed=seed,
        crashes=1,
        checkpoint_every=10,
        instrument=recorder.attach,
    )
    return recorder, {
        "scenario": "chaos",
        "seed": seed,
        "steps": outcome.steps,
        "segments": outcome.segments,
        "crashes": outcome.crashes,
        "committed": sorted(outcome.committed),
        "ok": outcome.ok,
        "violation": (
            None if outcome.violation is None else str(outcome.violation)
        ),
    }


def _scenario_overload(
    seed: int, sample_every: int
) -> tuple[RunRecorder, dict[str, Any]]:
    from ..admission.stress import OverloadConfig, overload_run

    recorder = RunRecorder(sample_every=sample_every)
    report, result = overload_run(
        OverloadConfig(
            n_transactions=24,
            n_entities=4,
            locks_per_txn=(2, 4),
            deadline_steps=120,
            preemption_limit=2,
            max_steps=60_000,
        ),
        seed=seed,
        instrument=recorder.attach,
    )
    return recorder, {
        "scenario": "overload",
        "seed": seed,
        "steps": report.steps,
        "admitted": report.admitted,
        "committed": report.committed,
        "shed": sorted(report.shed),
        "deadline_expiries": report.deadline_expiries,
        "immunity_grants": report.immunity_grants,
        "fingerprint": report.fingerprint(),
        "livelock": result.livelock_detected,
    }


def _scenario_distributed(
    seed: int, sample_every: int
) -> tuple[RunRecorder, dict[str, Any]]:
    """Five sites, rf=2, cross-site wound-wait under a hot workload.

    The shape mirrors ``repro chaos --sites 5 --replicate 2`` with the
    recorder attached from the first step.  The workload is contended
    enough that wounds routinely cross a site link before the victim's
    partial rollback — the cross-site cause links ``repro trace
    distributed --txn <id>`` renders.
    """
    from ..observability.tracing import build_txn_trace, trace_ids
    from ..resilience.chaos import chaos_run
    from ..simulation.workload import WorkloadConfig

    recorder = RunRecorder(sample_every=sample_every)
    outcome = chaos_run(
        WorkloadConfig(
            n_transactions=10,
            n_entities=8,
            locks_per_txn=(2, 4),
            write_ratio=1.0,
            skew="hotspot",
        ),
        workload_seed=seed,
        chaos_seed=seed,
        crashes=0,
        sites=5,
        replicate=2,
        cross_site_mode="wound-wait",
        instrument=recorder.attach,
    )
    cross_site_rollbacks = sum(
        len(build_txn_trace(recorder.events, txn).cross_site_rollbacks())
        for txn in trace_ids(recorder.events)
    )
    return recorder, {
        "scenario": "distributed",
        "seed": seed,
        "steps": outcome.steps,
        "sites": 5,
        "replicate": 2,
        "committed": sorted(outcome.committed),
        "cross_site_rollbacks": cross_site_rollbacks,
        "ok": outcome.ok,
        "violation": (
            None if outcome.violation is None else str(outcome.violation)
        ),
    }


def _scenario_figure2(
    seed: int, sample_every: int
) -> tuple[RunRecorder, dict[str, Any]]:
    """Figure 2's mutual-preemption livelock, broken by watchdog immunity.

    The scenario is fully scripted (the seed only labels the context —
    the paper's interleaving is fixed), so determinism holds trivially.
    The watchdog's preemption limit is low enough that a victim of the
    mutual-preemption exchange ages out within a few rounds; once the
    eldest holds the immunity slot, ``min-cost`` must stop preempting it
    and the run commits.
    """
    from ..admission.guard import OverloadGuard
    from ..admission.watchdog import StarvationWatchdog
    from ..analysis.figures import drive_figure1

    engine, _deadlock = drive_figure1(policy="min-cost", strategy="mcs")
    recorder = RunRecorder(sample_every=sample_every).attach(engine)
    engine.livelock_window = 2_000
    engine.overload = OverloadGuard(
        engine.scheduler,
        watchdog=StarvationWatchdog(
            preemption_limit=2, no_progress_window=300
        ),
    )
    result = engine.run()
    return recorder, {
        "scenario": "figure2-immunity",
        "seed": seed,
        "steps": result.steps,
        "committed": result.committed,
        "livelock": result.livelock_detected,
        "immunity_grants": result.metrics.immunity_grants,
        "mutual_preemption_pairs": [
            list(pair)
            for pair in sorted(result.metrics.mutual_preemption_pairs())
        ],
    }
