"""Pinned trace regressions: scenario runs whose span timeline must hold.

A ``kind: "trace"`` case under ``tests/regressions/`` pins one recorded
scenario — which transactions commit, how many immunity grants fire,
which mutual-preemption pairs appear — and re-checks the *semantic*
shape of the span timeline on every run: spans must validate (no
negative durations, every rollback interval carries a cause), and the
watchdog's immunity slot must actually protect its holder (no rollback
of the immune transaction while it holds the slot).

The flagship case pins the paper's Figure 2 livelock broken by the
starvation watchdog: T2 and T4 preempt each other under unconstrained
``min-cost`` until an immunity grant ends the exchange and the run
commits.  If a future change lets the holder be preempted anyway, or
the run livelocks again, the case fails with a triage-ready message.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import Event, EventKind
from .spans import build_spans, validate_spans


@dataclass
class TraceRegression:
    """A pinned scenario trace; ``check()`` re-runs and re-asserts it."""

    path: str
    scenario: str
    seed: int
    expect_committed: list[str]
    expect_immunity_grants: int
    expect_mutual_pairs: list[list[str]]

    def check(self) -> str:
        """Re-record the scenario; returns ``"clean"`` or a violation."""
        from .scenarios import record_scenario

        recorder, context = record_scenario(self.scenario, seed=self.seed)
        events = recorder.events
        if context.get("livelock"):
            return (
                "violation:trace scenario livelocked — the pinned run "
                "is expected to commit"
            )
        committed = sorted(str(txn) for txn in context.get("committed", []))
        if committed != sorted(self.expect_committed):
            return (
                "violation:trace committed set drifted: "
                f"{committed} != {sorted(self.expect_committed)}"
            )
        errors = validate_spans(build_spans(events))
        if errors:
            return f"violation:trace invalid span timeline: {errors[0]}"
        grants = [
            event for event in events if event.kind is EventKind.IMMUNITY_GRANT
        ]
        if len(grants) != self.expect_immunity_grants:
            return (
                "violation:trace immunity grant count drifted: "
                f"{len(grants)} != {self.expect_immunity_grants}"
            )
        pairs = [
            [str(txn) for txn in pair]
            for pair in context.get("mutual_preemption_pairs", [])
        ]
        if pairs != self.expect_mutual_pairs:
            return (
                "violation:trace mutual-preemption pairs drifted: "
                f"{pairs} != {self.expect_mutual_pairs}"
            )
        broken = _immunity_violation(events)
        if broken is not None:
            return broken
        return "clean"


def _immunity_violation(events: list[Event]) -> str | None:
    """The immunity contract: the slot holder is never rolled back.

    Tracks the holder through grant / handoff / release and flags any
    ROLLBACK of the current holder — the exact failure mode the watchdog
    exists to prevent (Figure 2's mutual preemption continuing past the
    grant).
    """
    holder: str | None = None
    for event in events:
        kind = event.kind
        if kind is EventKind.IMMUNITY_GRANT:
            holder = event.txn
        elif kind is EventKind.IMMUNITY_HANDOFF:
            holder = event.txn
        elif kind is EventKind.IMMUNITY_RELEASE:
            if holder == event.txn:
                holder = None
        elif kind is EventKind.ROLLBACK and event.txn == holder:
            return (
                "violation:trace immune transaction "
                f"{event.txn} was rolled back at step {event.step} "
                "while holding the immunity slot"
            )
    return None


def load_trace_case(path: str, data: dict[str, object]) -> TraceRegression:
    """Build a :class:`TraceRegression` from a parsed JSON case."""
    committed = data.get("expect_committed", [])
    pairs = data.get("expect_mutual_pairs", [])
    assert isinstance(committed, list) and isinstance(pairs, list)
    return TraceRegression(
        path=path,
        scenario=str(data["scenario"]),
        seed=int(data["seed"]),
        expect_committed=[str(txn) for txn in committed],
        expect_immunity_grants=int(data["expect_immunity_grants"]),
        expect_mutual_pairs=[[str(txn) for txn in pair] for pair in pairs],
    )
