"""The run recorder: one bus, one event list, wired into a whole run.

:class:`RunRecorder` owns a live :class:`~repro.observability.events.EventBus`
and collects everything published on it.  :meth:`attach` points an
engine's scheduler (and its satellite subsystems — distributed message
log, write-ahead log) at that bus and optionally installs a *graph
sampler*: every ``sample_every`` recorded engine steps it publishes a
SAMPLE event carrying the live gauges and the current waits-for arcs, so
exporters can render periodic graph snapshots without replaying the run.

Attach is repeatable: chaos runs build a fresh scheduler per crash
segment, and re-attaching the same recorder stitches every segment into
one continuous, deterministically-ordered stream (the bus sequence
number never resets).
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from ..core.transaction import TxnStatus
from .events import Event, EventBus, EventKind
from .export import JsonlStreamSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


class RunRecorder:
    """Collects the event stream of one (possibly multi-segment) run.

    Parameters
    ----------
    sample_every:
        Recorded engine steps between waits-for SAMPLE snapshots;
        ``0`` disables the sampler.
    stream_to:
        Optional JSONL path; every event is additionally written there
        flush-on-write via :class:`JsonlStreamSink`, so a crash loses at
        most the last event instead of the whole in-memory list.
    append:
        Reopen ``stream_to`` without truncating — restart continuity for
        multi-segment (crash/recover) runs.
    """

    def __init__(
        self,
        sample_every: int = 0,
        stream_to: str | Path | None = None,
        append: bool = False,
    ) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self.bus = EventBus()
        self.events: list[Event] = []
        self.bus.subscribe(self.events.append)
        self.stream: JsonlStreamSink | None = None
        if stream_to is not None:
            self.stream = JsonlStreamSink(stream_to, append=append)
            self.bus.subscribe(self.stream)
        self._steps_seen = 0

    def close(self) -> None:
        """Flush and close the streaming sink (no-op when not streaming)."""
        if self.stream is not None:
            self.stream.close()

    def attach(self, engine: "SimulationEngine") -> "RunRecorder":
        """Wire *engine*'s scheduler (and satellites) to this recorder.

        Safe to call before a recovery manager attaches (it copies the
        scheduler's then-live bus onto the WAL it creates) or after one
        did (the existing WAL is re-pointed here); chaos runs call this
        first, per segment, via the ``instrument`` hook of
        :func:`repro.resilience.chaos.chaos_run`.
        """
        scheduler = engine.scheduler
        scheduler.bus = self.bus
        message_log = getattr(scheduler, "message_log", None)
        if message_log is not None:
            message_log.bus = self.bus
        if scheduler.wal is not None:
            scheduler.wal.bus = self.bus
        if self.sample_every:
            previous = engine.on_step

            def observe(eng: "SimulationEngine", event: object) -> None:
                if previous is not None:
                    previous(eng, event)
                self._on_step(eng)

            engine.on_step = observe
        return self

    def _on_step(self, engine: "SimulationEngine") -> None:
        self._steps_seen += 1
        if self._steps_seen % self.sample_every:
            return
        scheduler = engine.scheduler
        graph = scheduler.concurrency_graph()
        arcs = sorted(
            (arc.holder, arc.waiter, arc.entity) for arc in graph.arcs
        )
        metrics = scheduler.metrics
        transactions = scheduler.transactions
        self.bus.publish(
            EventKind.SAMPLE,
            active=sum(1 for txn in transactions.values() if not txn.done),
            blocked=sum(
                1
                for txn in transactions.values()
                if txn.status is TxnStatus.BLOCKED
            ),
            wf_edges=len(arcs),
            arcs=[list(arc) for arc in arcs],
            rollbacks=metrics.rollbacks,
            states_lost=metrics.states_lost,
            commits=metrics.commits,
        )
