"""Windowed time-series over logical time, derived from the event stream.

Aggregate counters (:mod:`repro.core.metrics`) answer "how much, in
total"; the time series answers "when": active transactions, blocked
depth, waits-for edge count, states lost and rollbacks *per window*, and
block-duration percentiles.  Everything is computed from published
events, so the series is as deterministic as the event log it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import Event, EventKind


def percentile(values: list[int], fraction: float) -> int:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0
    ordered = sorted(values)
    index = min(
        len(ordered) - 1,
        max(0, int(fraction * len(ordered) + 0.999999) - 1),
    )
    return ordered[index]


@dataclass
class WindowSample:
    """Gauges and per-window deltas at the close of one window."""

    window: int
    step: int
    active: int
    blocked: int
    wf_edges: int
    rollbacks: int
    states_lost: int
    commits: int

    def to_obj(self) -> dict[str, int]:
        return {
            "window": self.window,
            "step": self.step,
            "active": self.active,
            "blocked": self.blocked,
            "wf_edges": self.wf_edges,
            "rollbacks": self.rollbacks,
            "states_lost": self.states_lost,
            "commits": self.commits,
        }


@dataclass
class TimeSeries:
    """The windowed series plus run-wide block-duration percentiles."""

    window_steps: int
    samples: list[WindowSample] = field(default_factory=list)
    block_durations: list[int] = field(default_factory=list)

    @property
    def p50_block(self) -> int:
        return percentile(self.block_durations, 0.50)

    @property
    def p99_block(self) -> int:
        return percentile(self.block_durations, 0.99)

    def peak(self, gauge: str) -> int:
        return max(
            (getattr(sample, gauge) for sample in self.samples), default=0
        )

    def to_obj(self) -> dict[str, Any]:
        """JSON-ready summary (CLI ``--format summary`` and tests)."""
        return {
            "window_steps": self.window_steps,
            "windows": [sample.to_obj() for sample in self.samples],
            "block_p50": self.p50_block,
            "block_p99": self.p99_block,
            "peak_active": self.peak("active"),
            "peak_blocked": self.peak("blocked"),
            "peak_wf_edges": self.peak("wf_edges"),
        }


def build_timeseries(
    events: Iterable[Event], window_steps: int = 50
) -> TimeSeries:
    """Fold the event stream into a :class:`TimeSeries`.

    Gauges (active transactions, blocked set, waits-for edge count) are
    sampled at each window close; rollbacks, states lost, and commits are
    per-window deltas.  The waits-for edge count tracks the latest SAMPLE
    event (published by the recorder's graph sampler) and carries forward
    between samples.
    """
    if window_steps < 1:
        raise ValueError("window_steps must be positive")
    series = TimeSeries(window_steps=window_steps)
    active: set[str] = set()
    done: set[str] = set()
    blocked_since: dict[str, int] = {}
    wf_edges = 0
    window = 0
    rollbacks = 0
    states_lost = 0
    commits = 0
    last_step = 0
    any_events = False

    def close_window(at_step: int) -> None:
        nonlocal rollbacks, states_lost, commits
        series.samples.append(
            WindowSample(
                window=window,
                step=at_step,
                active=len(active),
                blocked=len(blocked_since),
                wf_edges=wf_edges,
                rollbacks=rollbacks,
                states_lost=states_lost,
                commits=commits,
            )
        )
        rollbacks = 0
        states_lost = 0
        commits = 0

    def end_block(txn: str, step: int) -> None:
        since = blocked_since.pop(txn, None)
        if since is not None:
            series.block_durations.append(step - since)

    for event in events:
        any_events = True
        while event.step >= (window + 1) * window_steps:
            close_window((window + 1) * window_steps - 1)
            window += 1
        last_step = max(last_step, event.step)
        kind = event.kind
        if kind is EventKind.TXN_ADMIT or kind is EventKind.STEP:
            # STEP covers scenarios that register before recording began;
            # the done-guard keeps a terminated transaction's final STEP
            # (published after its TXN_COMMIT) from re-activating it.
            if event.txn and event.txn not in done:
                active.add(event.txn)
        elif kind is EventKind.TXN_COMMIT or kind is EventKind.TXN_SHED:
            active.discard(event.txn)
            done.add(event.txn)
            end_block(event.txn, event.step)
        elif kind is EventKind.LOCK_BLOCK:
            blocked_since.setdefault(event.txn, event.step)
        elif kind is EventKind.LOCK_GRANT:
            end_block(event.txn, event.step)
        elif kind is EventKind.ROLLBACK:
            end_block(event.txn, event.step)
            rollbacks += 1
            lost = event.data.get("states_lost", 0)
            states_lost += int(lost) if isinstance(lost, int) else 0
        elif kind is EventKind.SAMPLE:
            edges = event.data.get("wf_edges", wf_edges)
            wf_edges = int(edges) if isinstance(edges, int) else wf_edges
        if kind is EventKind.TXN_COMMIT:
            commits += 1
    if any_events:
        close_window(last_step)
    # A block still open at the end of the run counts at its observed
    # length — p99 under livelock should reflect the stuck waiters.
    for txn in sorted(blocked_since):
        series.block_durations.append(last_step - blocked_since[txn])
    return series
