"""Cross-site causal tracing: one transaction's life as a single timeline.

Spans (:mod:`repro.observability.spans`) already explain *what* happened
to each transaction inside one scheduler.  This module closes the two
remaining gaps:

* **Propagation.**  :class:`TraceContext` is the deterministic context a
  service client attaches to every request (and the server echoes back):
  a trace id derived from the client's own counters, a span id per
  attempt, the originating site, and a Lamport clock merged at every
  hop.  No wall clock, no randomness — two same-seed runs produce the
  same contexts, which keeps the byte-identity contracts intact.
  :class:`Tracer` is the per-process registry the service core uses to
  merge incoming clocks and stamp outgoing replies.

* **Stitching.**  :func:`build_txn_trace` folds a recorded event stream
  into a :class:`TxnTrace` for one transaction: admission, blocks and
  grants (with entities), inter-site messages it rode on, wounds and
  probes that crossed a link, the partial rollback with its mandatory
  cause link — resolved back to the message that carried the wound, so
  a rollback caused from another site shows ``site a -> site b``
  explicitly — and the final commit/shed.  Site attribution is inferred
  from the message stream itself (a transaction's LOCK_REQUESTs leave
  its home site), so traces can be rebuilt from an exported JSONL log.

``repro trace <scenario> --txn T007`` renders the timeline; the
``distributed`` scenario (five sites, rf=2, chaos faults) exists so the
cross-site story has a first-class, seeded reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .events import Event, EventKind

#: Event kinds that never appear in a transaction drill-down (engine
#: heartbeat and sampler noise); everything else concerning the
#: transaction is kept.
_SKIPPED = frozenset({EventKind.STEP, EventKind.SAMPLE})

#: MESSAGE_SEND payload names whose *receiver* (not sender) is the home
#: site of the transaction the message names: a wound travels from the
#: requester's home to the victim's.
_RECEIVER_HOMED = frozenset({"wound", "lock-grant", "lock-denied-wait"})


@dataclass(frozen=True)
class TraceContext:
    """One hop's causal coordinates, carried on the wire as a dict.

    ``trace_id`` names the whole transaction-spanning trace (derived
    from the client's name and request counter — deterministic).
    ``span`` names the current hop, ``parent`` the hop that caused it.
    ``site`` is the originating site (-1 for a client outside the
    cluster) and ``clock`` a Lamport clock: send ticks it, receive
    merges it, so cross-process cause always has a smaller clock.
    """

    trace_id: str
    span: str = ""
    parent: str = ""
    site: int = -1
    clock: int = 0

    def to_obj(self) -> dict[str, Any]:
        return {
            "id": self.trace_id,
            "span": self.span,
            "parent": self.parent,
            "site": self.site,
            "clock": self.clock,
        }

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "TraceContext | None":
        """Tolerant decode of a wire ``trace`` field (None on garbage)."""
        trace_id = obj.get("id") if isinstance(obj, Mapping) else None
        if not isinstance(trace_id, str) or not trace_id:
            return None
        clock = obj.get("clock", 0)
        site = obj.get("site", -1)
        return cls(
            trace_id=trace_id,
            span=str(obj.get("span", "")),
            parent=str(obj.get("parent", "")),
            site=site if isinstance(site, int) else -1,
            clock=clock if isinstance(clock, int) else 0,
        )

    def child(self, span: str, site: int | None = None) -> "TraceContext":
        """The next hop: current span becomes the parent, clock ticks."""
        return TraceContext(
            trace_id=self.trace_id,
            span=span,
            parent=self.span,
            site=self.site if site is None else site,
            clock=self.clock + 1,
        )

    def merged(self, clock: int) -> "TraceContext":
        """Lamport receive rule: ``max(local, remote) + 1``."""
        return TraceContext(
            trace_id=self.trace_id,
            span=self.span,
            parent=self.parent,
            site=self.site,
            clock=max(self.clock, clock) + 1,
        )


class Tracer:
    """Per-process trace registry (the service core owns one).

    Merges every incoming :class:`TraceContext` into a process-wide
    Lamport clock and remembers the latest context per transaction so
    ``trace_status`` can answer "where has this transaction been".
    Everything is a pure function of the request order — replaying a
    journal reproduces the same clocks and contexts.
    """

    def __init__(self, site: int = 0) -> None:
        self.site = site
        self.clock = 0
        self.by_txn: dict[str, TraceContext] = {}

    def observe(
        self, trace_obj: Any, txn: str = ""
    ) -> TraceContext | None:
        """Merge one incoming wire ``trace`` field; returns the context
        as seen by this process (site rewritten, clock merged)."""
        context = (
            TraceContext.from_obj(trace_obj)
            if isinstance(trace_obj, Mapping)
            else None
        )
        if context is None:
            return None
        self.clock = max(self.clock, context.clock) + 1
        seen = TraceContext(
            trace_id=context.trace_id,
            span=context.span,
            parent=context.parent,
            site=self.site,
            clock=self.clock,
        )
        if txn:
            self.by_txn[txn] = seen
        return seen

    def stamp(self, txn: str = "") -> dict[str, Any]:
        """The outgoing ``trace`` echo for a reply: the transaction's
        latest context (if any) at this process's current clock."""
        context = self.by_txn.get(txn)
        if context is None:
            return {"site": self.site, "clock": self.clock}
        return {
            "id": context.trace_id,
            "span": context.span,
            "site": self.site,
            "clock": self.clock,
        }

    def forget(self, txn: str) -> None:
        self.by_txn.pop(txn, None)

    def status(self, txn: str) -> dict[str, Any]:
        context = self.by_txn.get(txn)
        return {
            "txn": txn,
            "known": context is not None,
            "trace": None if context is None else context.to_obj(),
            "site": self.site,
            "clock": self.clock,
        }


# -- stitching a recorded stream into one transaction's timeline -----------


@dataclass
class TraceEntry:
    """One row of a transaction timeline."""

    seq: int
    step: int
    kind: str
    detail: str
    site: int | None = None
    to_site: int | None = None
    cause_seq: int | None = None

    def to_obj(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "step": self.step,
            "kind": self.kind,
            "detail": self.detail,
            "site": self.site,
            "to_site": self.to_site,
            "cause_seq": self.cause_seq,
        }


@dataclass
class TxnTrace:
    """One transaction's stitched, possibly cross-site timeline."""

    txn: str
    home_site: int | None = None
    outcome: str = "active"
    start: int = 0
    end: int | None = None
    entries: list[TraceEntry] = field(default_factory=list)

    @property
    def sites(self) -> list[int]:
        """Every site the timeline touched, sorted."""
        touched = set()
        for entry in self.entries:
            if entry.site is not None:
                touched.add(entry.site)
            if entry.to_site is not None:
                touched.add(entry.to_site)
        return sorted(touched)

    def cross_site_links(self) -> list[TraceEntry]:
        """Entries whose cause or payload crossed a site boundary."""
        return [
            entry
            for entry in self.entries
            if entry.site is not None
            and entry.to_site is not None
            and entry.site != entry.to_site
        ]

    def cross_site_rollbacks(self) -> list[TraceEntry]:
        """Rollback entries whose cause link crosses a site boundary."""
        return [
            entry
            for entry in self.cross_site_links()
            if entry.kind == EventKind.ROLLBACK.value
        ]

    def to_obj(self) -> dict[str, Any]:
        return {
            "txn": self.txn,
            "home_site": self.home_site,
            "sites": self.sites,
            "outcome": self.outcome,
            "start": self.start,
            "end": self.end,
            "entries": [entry.to_obj() for entry in self.entries],
            "cross_site_links": len(self.cross_site_links()),
            "cross_site_rollbacks": len(self.cross_site_rollbacks()),
        }


def infer_home_sites(events: Iterable[Event]) -> dict[str, int]:
    """``txn -> home site`` from the message stream.

    A transaction's LOCK_REQUEST / UNLOCK / PROBE messages leave its
    home site (the sender); a WOUND or a lock grant/denial *arrives* at
    it (the receiver).  First observation wins — deterministic because
    the event stream is totally ordered.
    """
    homes: dict[str, int] = {}
    for event in events:
        if event.kind is not EventKind.MESSAGE_SEND or not event.txn:
            continue
        if event.txn in homes:
            continue
        payload = event.data.get("message", "")
        sender = event.data.get("sender")
        receiver = event.data.get("receiver")
        if payload in _RECEIVER_HOMED:
            if isinstance(receiver, int):
                homes[event.txn] = receiver
        elif isinstance(sender, int):
            homes[event.txn] = sender
    return homes


def trace_ids(events: Iterable[Event]) -> list[str]:
    """Every transaction id with at least one non-heartbeat event."""
    seen: set[str] = set()
    for event in events:
        if event.txn and event.kind not in _SKIPPED:
            seen.add(event.txn)
    return sorted(seen)


def _message_detail(event: Event) -> str:
    payload = str(event.data.get("message", "?"))
    entity = event.data.get("entity", "")
    suffix = f" [{entity}]" if entity else ""
    return f"{payload}{suffix}"


def build_txn_trace(events: Iterable[Event], txn: str) -> TxnTrace:
    """Fold the event stream into *txn*'s end-to-end timeline.

    Keeps every event naming the transaction (except the STEP/SAMPLE
    heartbeat), rollbacks of *other* transactions it preempted, and —
    the cross-site stitch — resolves each of the transaction's own
    rollbacks back to the latest preceding WOUND message that named it,
    so the cause link carries the ``requester home -> victim home``
    site pair of the conflict that crossed the wire.
    """
    stream = list(events)
    homes = infer_home_sites(stream)
    trace = TxnTrace(txn=txn, home_site=homes.get(txn))
    last_wound: Event | None = None
    first = True
    for event in stream:
        kind = event.kind
        if (
            kind is EventKind.MESSAGE_SEND
            and event.txn == txn
            and event.data.get("message") == "wound"
        ):
            last_wound = event
        mine = event.txn == txn and kind not in _SKIPPED
        preempted = (
            kind is EventKind.ROLLBACK
            and event.txn != txn
            and event.data.get("requester") == txn
        )
        if not mine and not preempted:
            continue
        if mine and first:
            trace.start = event.step
            first = False
        site = homes.get(event.txn)
        entry = TraceEntry(
            seq=event.seq,
            step=event.step,
            kind=kind.value,
            detail="",
            site=site,
        )
        if kind is EventKind.MESSAGE_SEND or kind in (
            EventKind.MESSAGE_DROP,
            EventKind.MESSAGE_DELAY,
            EventKind.MESSAGE_DUPLICATE,
        ):
            sender = event.data.get("sender")
            receiver = event.data.get("receiver")
            entry.site = sender if isinstance(sender, int) else None
            entry.to_site = receiver if isinstance(receiver, int) else None
            entry.detail = _message_detail(event)
        elif kind is EventKind.LOCK_BLOCK:
            entry.detail = f"blocked on {event.data.get('entity', '?')}"
        elif kind is EventKind.LOCK_GRANT:
            entry.detail = f"granted {event.data.get('entity', '?')}"
        elif kind is EventKind.ROLLBACK:
            requester = event.data.get("requester", "")
            target = event.data.get("target", "?")
            lost = event.data.get("states_lost", "?")
            flavour = (
                "total restart" if event.data.get("total") else
                f"partial rollback to state {target}"
            )
            if preempted:
                entry.detail = (
                    f"preempted {event.txn}: {flavour} ({lost} states lost)"
                )
            else:
                entry.detail = (
                    f"{flavour}, {lost} states lost, wounded by "
                    f"{requester or 'local conflict'}"
                )
                if (
                    last_wound is not None
                    and last_wound.seq < event.seq
                ):
                    sender = last_wound.data.get("sender")
                    receiver = last_wound.data.get("receiver")
                    if isinstance(sender, int) and isinstance(
                        receiver, int
                    ):
                        entry.site = sender
                        entry.to_site = receiver
                        entry.cause_seq = last_wound.seq
                        entry.detail += (
                            f" (wound crossed site {sender} -> "
                            f"site {receiver})"
                        )
                    last_wound = None
        elif kind is EventKind.TXN_COMMIT:
            trace.outcome = "committed"
            trace.end = event.step
            entry.detail = "committed"
        elif kind is EventKind.TXN_SHED:
            trace.outcome = "shed"
            trace.end = event.step
            entry.detail = f"shed ({event.data.get('reason', 'overload')})"
        elif kind is EventKind.DEADLOCK:
            cycles = event.data.get("cycles", [])
            via = " via probe" if event.data.get("probe") else ""
            entry.detail = f"deadlock{via}: {cycles}"
        elif kind is EventKind.SERVICE_REQUEST:
            verb = event.data.get("verb", "?")
            rid = event.data.get("rid", "")
            trace_field = event.data.get("trace")
            tag = ""
            if isinstance(trace_field, Mapping) and trace_field.get("id"):
                tag = (
                    f" trace={trace_field['id']}"
                    f"@{trace_field.get('clock', 0)}"
                )
            entry.detail = f"request {verb} ({rid}){tag}"
        elif kind is EventKind.SERVICE_REPLY:
            entry.detail = (
                f"reply {event.data.get('verb', '?')} "
                f"code={event.data.get('code', '?')}"
            )
        else:
            interesting = {
                key: value
                for key, value in sorted(event.data.items())
                if key not in ("arcs",) and not isinstance(value, (list, dict))
            }
            entry.detail = ", ".join(
                f"{key}={value}" for key, value in interesting.items()
            )
        trace.entries.append(entry)
    return trace


def render_txn_trace(trace: TxnTrace) -> str:
    """Fixed-width human rendering of one transaction timeline."""
    home = "?" if trace.home_site is None else str(trace.home_site)
    sites = ",".join(str(site) for site in trace.sites) or "-"
    lines = [
        f"trace {trace.txn} — home site {home}, sites touched: {sites}",
        f"outcome {trace.outcome}"
        + (f" @ step {trace.end}" if trace.end is not None else ""),
        f"{'seq':>6} {'step':>6}  {'site':<7} event",
    ]
    for entry in trace.entries:
        if entry.to_site is not None and entry.site is not None:
            site = f"{entry.site}->{entry.to_site}"
        elif entry.site is not None:
            site = str(entry.site)
        else:
            site = "-"
        cause = (
            f"  <- seq {entry.cause_seq}"
            if entry.cause_seq is not None
            else ""
        )
        lines.append(
            f"{entry.seq:>6} {entry.step:>6}  {site:<7} "
            f"{entry.kind:<18} {entry.detail}{cause}"
        )
    crossed = trace.cross_site_rollbacks()
    lines.append(
        f"cross-site links: {len(trace.cross_site_links())} "
        f"({len(crossed)} rollback cause(s) crossing a site boundary)"
    )
    return "\n".join(lines) + "\n"
