"""Exporters: JSONL event logs, Chrome trace_event JSON, graph snapshots.

Three output shapes for one event stream:

* :func:`to_jsonl` — one JSON object per line, keys sorted, newline
  terminated.  :func:`fingerprint` is the SHA-256 of exactly those bytes,
  so "same seed, byte-identical log" is a single string comparison.
* :func:`to_chrome` — the ``trace_event`` JSON object format understood
  by ``chrome://tracing`` and Perfetto: one timeline row per transaction,
  complete ("X") slices for the span and its blocked / rolling-back
  intervals, instant ("i") markers for deadlocks, immunity grants,
  breaker transitions, and crashes.  Timestamps are logical engine steps
  (the ``ts`` unit is microseconds to a viewer, but only relative layout
  matters).
* :func:`graph_snapshots` — the recorder's periodic waits-for SAMPLE
  events re-rendered as Graphviz DOT via the existing
  :func:`repro.graphs.render.concurrency_to_dot`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable

from ..graphs.concurrency import ConcurrencyGraph
from ..graphs.render import concurrency_to_dot
from .events import Event, EventKind
from .spans import Span, build_spans

#: Event kinds rendered as instant markers on a Chrome timeline.
_INSTANT_KINDS = {
    EventKind.DEADLOCK: "deadlock",
    EventKind.VICTIM_SELECT: "victim",
    EventKind.IMMUNITY_GRANT: "immunity-grant",
    EventKind.IMMUNITY_HANDOFF: "immunity-handoff",
    EventKind.BREAKER_TRANSITION: "breaker",
    EventKind.CRASH: "crash",
    EventKind.DEADLINE_RUNG: "deadline",
    EventKind.DEGRADE_RESTART: "degrade",
}


def event_lines(events: Iterable[Event]) -> list[str]:
    """One sorted-keys JSON line per event (the JSONL rows)."""
    return [
        json.dumps(event.to_obj(), sort_keys=True, default=str)
        for event in events
    ]


def to_jsonl(events: Iterable[Event]) -> str:
    """The canonical JSONL export (newline-terminated when non-empty)."""
    lines = event_lines(events)
    return "\n".join(lines) + ("\n" if lines else "")


def fingerprint(events: Iterable[Event]) -> str:
    """SHA-256 over the exact JSONL bytes — the determinism contract."""
    return hashlib.sha256(to_jsonl(events).encode()).hexdigest()


class JsonlStreamSink:
    """A bus sink that streams events to a JSONL file, flush-on-write.

    Export-at-end loses the whole run if the process dies; a long-lived
    service cannot accept that.  Subscribed to an
    :class:`~repro.observability.events.EventBus`, this sink writes each
    event as one canonical JSONL line (identical bytes to
    :func:`to_jsonl`) and flushes — with ``fsync=True`` it also forces
    the line to disk — so a ``kill -9`` loses at most the event being
    written.  ``append=True`` reopens an existing file without
    truncation, the restart half of the segment-stitching contract:
    re-attaching a recorder after a crash continues the same stream.
    """

    def __init__(
        self,
        path: str | Path,
        append: bool = False,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._handle = self.path.open("a" if append else "w")
        self.lines_written = 0

    def __call__(self, event: Event) -> None:
        self._handle.write(
            json.dumps(event.to_obj(), sort_keys=True, default=str) + "\n"
        )
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self.lines_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonlStreamSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events_jsonl(path: str | Path) -> list[Event]:
    """Load a streamed JSONL event file back into :class:`Event` records.

    The inverse of :class:`JsonlStreamSink` (and of :func:`to_jsonl`):
    used by replay verification to feed a recorded request stream back
    through the simulator.  A trailing half-written line — the most a
    crash can leave behind under flush-on-write — is skipped; a corrupt
    line anywhere else raises.
    """
    events: list[Event] = []
    with Path(path).open() as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn final write from a crash
            raise
        events.append(
            Event(
                seq=obj["seq"],
                step=obj["step"],
                kind=EventKind(obj["kind"]),
                txn=obj.get("txn", ""),
                data=obj.get("data", {}),
            )
        )
    return events


def to_chrome(events: list[Event]) -> dict[str, Any]:
    """The ``trace_event`` object-format document for chrome://tracing."""
    spans = build_spans(events)
    last_step = max((event.step for event in events), default=0)
    ordered = sorted(
        spans.values(), key=lambda span: (span.start, span.txn)
    )
    tids = {span.txn: index + 1 for index, span in enumerate(ordered)}
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro scheduler"},
        }
    ]
    for span in ordered:
        tid = tids[span.txn]
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": span.txn},
            }
        )
        end = span.end if span.end is not None else last_step
        trace_events.append(
            {
                "name": f"{span.txn} ({span.outcome})",
                "cat": "txn",
                "ph": "X",
                "ts": span.start,
                "dur": max(1, end - span.start),
                "pid": 1,
                "tid": tid,
                "args": {"outcome": span.outcome},
            }
        )
        for interval in span.intervals:
            iv_end = interval.end if interval.end is not None else last_step
            trace_events.append(
                {
                    "name": (
                        f"blocked on {interval.cause}"
                        if interval.kind == "blocked"
                        else f"rolling back (by {interval.cause})"
                    ),
                    "cat": interval.kind,
                    "ph": "X",
                    "ts": interval.start,
                    "dur": max(1, iv_end - interval.start),
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "cause": interval.cause,
                        "detail": interval.detail,
                    },
                }
            )
    for event in events:
        label = _INSTANT_KINDS.get(event.kind)
        if label is None:
            continue
        trace_events.append(
            {
                "name": f"{label}: {event.txn}" if event.txn else label,
                "cat": "marker",
                "ph": "i",
                "ts": event.step,
                "pid": 1,
                "tid": tids.get(event.txn, 0),
                "s": "t" if event.txn in tids else "g",
                "args": {
                    str(key): str(value)
                    for key, value in sorted(event.data.items())
                },
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "logical engine steps"},
    }


def graph_snapshots(events: Iterable[Event]) -> list[tuple[int, str]]:
    """``(step, dot_source)`` per recorded waits-for SAMPLE snapshot."""
    snapshots: list[tuple[int, str]] = []
    for event in events:
        if event.kind is not EventKind.SAMPLE:
            continue
        arcs = event.data.get("arcs")
        if arcs is None:
            continue
        graph = ConcurrencyGraph()
        for holder, waiter, entity in arcs:
            graph.add_wait(str(holder), str(waiter), str(entity))
        snapshots.append(
            (event.step, concurrency_to_dot(graph, title=f"step_{event.step}"))
        )
    return snapshots


def spans_summary(spans: dict[str, Span]) -> list[dict[str, Any]]:
    """JSON-ready span list, ordered by start step (summary exporter)."""
    ordered = sorted(spans.values(), key=lambda span: (span.start, span.txn))
    return [span.to_obj() for span in ordered]
