"""``repro top``: a text dashboard computed from the event stream.

Given a recorded run and a step of interest, the dashboard shows what an
operator would want on one screen: the hottest entities, the
longest-blocked transactions, the worst rollback victims, and the state
of the admission / watchdog / breaker machinery as of that step.  Pure
function of the events — replayable from a JSONL export.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from .events import Event, EventKind
from .spans import BLOCKED, build_spans
from .timeseries import build_timeseries


@dataclass
class TopReport:
    """The dashboard's data, before rendering."""

    at: int
    hottest_entities: list[tuple[str, int]]
    longest_blocked: list[tuple[str, int, str]]
    rollback_victims: list[tuple[str, int, int]]
    active: int
    blocked: int
    commits: int
    sheds: int
    deadlocks: int
    admission_window: int | None
    admission_queue: int
    immunity_holder: str | None
    breaker_states: dict[str, str] = field(default_factory=dict)
    deadline_rungs: Counter = field(default_factory=Counter)
    block_p50: int = 0
    block_p99: int = 0

    def to_obj(self) -> dict[str, Any]:
        return {
            "at": self.at,
            "hottest_entities": [list(e) for e in self.hottest_entities],
            "longest_blocked": [list(e) for e in self.longest_blocked],
            "rollback_victims": [list(e) for e in self.rollback_victims],
            "active": self.active,
            "blocked": self.blocked,
            "commits": self.commits,
            "sheds": self.sheds,
            "deadlocks": self.deadlocks,
            "admission_window": self.admission_window,
            "admission_queue": self.admission_queue,
            "immunity_holder": self.immunity_holder,
            "breaker_states": dict(sorted(self.breaker_states.items())),
            "deadline_rungs": dict(sorted(self.deadline_rungs.items())),
            "block_p50": self.block_p50,
            "block_p99": self.block_p99,
        }


def build_top(
    events: list[Event], at: int | None = None, limit: int = 5
) -> TopReport:
    """Fold the event prefix up to *at* (default: end of run)."""
    if at is None:
        at = max((event.step for event in events), default=0)
    window = [event for event in events if event.step <= at]

    hot: Counter = Counter()
    victims: Counter = Counter()
    states_lost: Counter = Counter()
    active: set[str] = set()
    done: set[str] = set()
    commits = 0
    sheds = 0
    deadlocks = 0
    admission_window: int | None = None
    admission_queue = 0
    immunity_holder: str | None = None
    breaker_states: dict[str, str] = {}
    rungs: Counter = Counter()
    for event in window:
        kind = event.kind
        if kind is EventKind.LOCK_BLOCK:
            hot[str(event.data.get("entity", "?"))] += 1
        elif kind is EventKind.ROLLBACK:
            victims[event.txn] += 1
            lost = event.data.get("states_lost", 0)
            states_lost[event.txn] += int(lost) if isinstance(lost, int) else 0
        elif kind is EventKind.TXN_ADMIT or kind is EventKind.STEP:
            # The engine's STEP event lands after any TXN_COMMIT published
            # inside the same scheduler step, so a terminated transaction
            # must not be re-activated by its own final step.
            if event.txn and event.txn not in done:
                active.add(event.txn)
        elif kind is EventKind.DEADLOCK:
            deadlocks += 1
        elif kind is EventKind.ADMISSION_WINDOW:
            value = event.data.get("window")
            admission_window = int(value) if isinstance(value, int) else None
        elif kind is EventKind.ADMISSION_SUBMIT:
            admission_queue += 1
        elif kind is EventKind.ADMISSION_ADMIT:
            admission_queue = max(0, admission_queue - 1)
        elif kind is EventKind.IMMUNITY_GRANT:
            immunity_holder = event.txn
        elif kind is EventKind.IMMUNITY_RELEASE:
            if immunity_holder == event.txn:
                immunity_holder = None
        elif kind is EventKind.BREAKER_TRANSITION:
            breaker_states[str(event.data.get("site", "?"))] = str(
                event.data.get("after", "?")
            )
        elif kind is EventKind.DEADLINE_RUNG:
            rungs[f"rung-{event.data.get('rung', '?')}"] += 1
        if kind is EventKind.TXN_COMMIT:
            commits += 1
            active.discard(event.txn)
            done.add(event.txn)
        elif kind is EventKind.TXN_SHED:
            sheds += 1
            active.discard(event.txn)
            done.add(event.txn)

    spans = build_spans(window)
    blocked_now = 0
    longest: list[tuple[str, int, str]] = []
    for txn in sorted(spans):
        for interval in spans[txn].intervals:
            if interval.kind != BLOCKED or interval.start > at:
                continue
            end = interval.end if interval.end is not None else at
            end = min(end, at)
            if end >= at > interval.start:
                blocked_now += 1
            longest.append((txn, end - interval.start, interval.cause))
    longest.sort(key=lambda item: (-item[1], item[0]))

    series = build_timeseries(window)
    return TopReport(
        at=at,
        hottest_entities=hot.most_common(limit),
        longest_blocked=longest[:limit],
        rollback_victims=[
            (txn, count, states_lost[txn])
            for txn, count in victims.most_common(limit)
        ],
        active=len(active),
        blocked=blocked_now,
        commits=commits,
        sheds=sheds,
        deadlocks=deadlocks,
        admission_window=admission_window,
        admission_queue=admission_queue,
        immunity_holder=immunity_holder,
        breaker_states=breaker_states,
        deadline_rungs=rungs,
        block_p50=series.p50_block,
        block_p99=series.p99_block,
    )


def render_top(report: TopReport) -> str:
    """The dashboard as fixed-width terminal text."""
    lines = [
        f"repro top @ step {report.at}",
        "",
        f"active {report.active:>4}   blocked {report.blocked:>4}   "
        f"commits {report.commits:>4}   shed {report.sheds:>3}   "
        f"deadlocks {report.deadlocks:>4}",
        f"block p50/p99        {report.block_p50}/{report.block_p99} steps",
    ]
    if report.admission_window is not None:
        lines.append(
            f"admission window     {report.admission_window} "
            f"(queue ~{report.admission_queue})"
        )
    lines.append(
        f"immunity holder      {report.immunity_holder or '(none)'}"
    )
    if report.breaker_states:
        states = ", ".join(
            f"site {site}: {state}"
            for site, state in sorted(report.breaker_states.items())
        )
        lines.append(f"breakers             {states}")
    if report.deadline_rungs:
        rungs = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(report.deadline_rungs.items())
        )
        lines.append(f"deadline escalations {rungs}")
    lines.append("")
    lines.append("hottest entities (blocks)")
    for entity, count in report.hottest_entities or [("(none)", 0)]:
        lines.append(f"  {entity:<12} {count:>6}")
    lines.append("longest blocked (txn, steps, entity)")
    if report.longest_blocked:
        for txn, duration, entity in report.longest_blocked:
            lines.append(f"  {txn:<8} {duration:>6}  on {entity}")
    else:
        lines.append("  (none)")
    lines.append("rollback victims (txn, rollbacks, states lost)")
    if report.rollback_victims:
        for txn, count, lost in report.rollback_victims:
            lines.append(f"  {txn:<8} {count:>6}  {lost:>6}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)
