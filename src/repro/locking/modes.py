"""Lock modes and their compatibility (paper §2).

Transactions that will only read an entity may take a *shared* lock (the
paper's ``LS`` request); transactions that will read and write must take an
*exclusive* lock (``LX``).  Shared locks are mutually compatible; an
exclusive lock is compatible with nothing.
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    """The two lock modes of the paper's model."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """True iff a lock in ``self`` mode can coexist with one in *other*."""
        return self is LockMode.SHARED and other is LockMode.SHARED

    @property
    def is_exclusive(self) -> bool:
        return self is LockMode.EXCLUSIVE

    @property
    def is_shared(self) -> bool:
        return self is LockMode.SHARED

    def __str__(self) -> str:
        return self.value


SHARED = LockMode.SHARED
EXCLUSIVE = LockMode.EXCLUSIVE


def compatible(held: LockMode, requested: LockMode) -> bool:
    """Compatibility predicate as a free function (matrix form)."""
    return held.compatible_with(requested)
