"""The lock table: holders, FIFO wait queues, grant and release logic.

The table is deliberately policy-free: it answers "who holds what", "who
waits for what", and applies the shared/exclusive compatibility matrix with
first-in-first-out granting.  Deadlock detection and resolution live above
it (:mod:`repro.core.detection`, :mod:`repro.core.scheduler`).

Wait edges follow the paper's orientation: if transaction ``w`` is waiting
to lock an entity locked by ``h``, the edge is ``h -> w`` (holder to
waiter), labeled with the entity.

The table also *continuously maintains* the waits-for graph (the paper's
premise that makes detection-at-every-conflict affordable): every mutation
of an entity's lock state refreshes that entity's edges in
:attr:`LockTable.waits_for`, an
:class:`~repro.graphs.incremental.IncrementalWaitsFor`.  Detection then
searches the live structure; :func:`~repro.graphs.concurrency.
ConcurrencyGraph.from_lock_table` remains the from-scratch oracle the
``graph-consistency`` invariant checks it against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import LockError
from ..graphs.incremental import IncrementalWaitsFor
from .modes import LockMode

TxnId = str
EntityName = str


@dataclass
class QueuedRequest:
    """A lock request waiting in an entity's FIFO queue."""

    txn: TxnId
    mode: LockMode
    seq: int


@dataclass
class Grant:
    """A lock grant produced by :meth:`LockTable.release` wake-ups."""

    txn: TxnId
    entity: EntityName
    mode: LockMode


@dataclass
class _EntityLockState:
    holders: dict[TxnId, LockMode] = field(default_factory=dict)
    queue: list[QueuedRequest] = field(default_factory=list)


class LockTable:
    """Shared/exclusive lock table with FIFO wait queues.

    Granting discipline: a request is granted immediately iff it is
    compatible with every current holder *and* no request is already queued
    (strict FIFO — later compatible requests do not overtake earlier
    incompatible ones, which prevents writer starvation).  On release, the
    queue is drained from the front while the head request is grantable; a
    run of consecutive shared requests is granted together.
    """

    def __init__(self) -> None:
        self._locks: dict[EntityName, _EntityLockState] = {}
        self._held_by_txn: dict[TxnId, dict[EntityName, LockMode]] = {}
        self._waiting: dict[TxnId, EntityName] = {}
        self._seq = 0
        #: Continuously maintained waits-for graph; every mutation of an
        #: entity's lock state refreshes that entity's edges, so detection
        #: never rescans the table.
        self.waits_for = IncrementalWaitsFor()

    def _refresh_waits(self, entity: EntityName) -> None:
        """Re-derive *entity*'s waits-for edges from its current state."""
        state = self._locks.get(entity)
        if state is None:
            self.waits_for.refresh_entity(entity, {}, ())
        else:
            self.waits_for.refresh_entity(entity, state.holders, state.queue)

    # -- inspection -------------------------------------------------------

    def holders(self, entity: EntityName) -> dict[TxnId, LockMode]:
        """Current holders of *entity* (txn -> mode); empty dict if unlocked."""
        state = self._locks.get(entity)
        return dict(state.holders) if state else {}

    def queue(self, entity: EntityName) -> list[QueuedRequest]:
        """Waiting requests on *entity*, in FIFO order."""
        state = self._locks.get(entity)
        return list(state.queue) if state else []

    def locks_held(self, txn: TxnId) -> dict[EntityName, LockMode]:
        """All locks *txn* currently holds (entity -> mode)."""
        return dict(self._held_by_txn.get(txn, {}))

    def holds(self, txn: TxnId, entity: EntityName) -> LockMode | None:
        """Mode in which *txn* holds *entity*, or ``None``."""
        return self._held_by_txn.get(txn, {}).get(entity)

    def waiting_on(self, txn: TxnId) -> EntityName | None:
        """Entity *txn* is currently queued for, or ``None`` if not waiting."""
        return self._waiting.get(txn)

    def blockers_of(self, txn: TxnId) -> set[TxnId]:
        """Transactions whose locks block *txn*'s queued request.

        A waiter is blocked by every holder whose lock is incompatible with
        the waiter's requested mode, and — because granting is FIFO — by
        every *earlier queued* request with an incompatible mode (the later
        request cannot be granted before the earlier one).
        """
        entity = self._waiting.get(txn)
        if entity is None:
            return set()
        state = self._locks[entity]
        position = next(
            i for i, r in enumerate(state.queue) if r.txn == txn
        )
        request = state.queue[position]
        blockers = {
            holder
            for holder, mode in state.holders.items()
            if not mode.compatible_with(request.mode)
        }
        for earlier in state.queue[:position]:
            if not earlier.mode.compatible_with(request.mode):
                blockers.add(earlier.txn)
        return blockers

    def wait_edges(self) -> Iterator[tuple[TxnId, TxnId, EntityName]]:
        """Yield ``(holder, waiter, entity)`` triples (paper orientation).

        Includes holder->waiter edges for lock conflicts and
        earlier-waiter->later-waiter edges for incompatible queued requests
        (FIFO order blocking), so queue-induced deadlocks are visible.
        Queue edges only matter with shared locks: with exclusive locks
        only, every deadlock already shows up as a cycle of conflict
        edges (see :meth:`conflict_edges`).
        """
        yield from self.conflict_edges()
        for entity, state in self._locks.items():
            for position, request in enumerate(state.queue):
                for earlier in state.queue[:position]:
                    if not earlier.mode.compatible_with(request.mode):
                        yield earlier.txn, request.txn, entity

    def conflict_edges(self) -> Iterator[tuple[TxnId, TxnId, EntityName]]:
        """Holder->waiter edges for genuine lock conflicts only — the
        paper's relation (Theorem 1's forest criterion applies to this
        subgraph)."""
        for entity, state in self._locks.items():
            for request in state.queue:
                for holder, mode in state.holders.items():
                    if not mode.compatible_with(request.mode):
                        yield holder, request.txn, entity

    def all_waiting(self) -> Iterable[TxnId]:
        """Transactions currently queued on some entity."""
        return self._waiting.keys()

    # -- requests -----------------------------------------------------------

    def request(self, txn: TxnId, entity: EntityName, mode: LockMode) -> bool:
        """Request a lock; returns ``True`` if granted immediately.

        When not granted, the request is appended to the entity's FIFO queue
        and ``False`` is returned; the caller is responsible for running
        deadlock detection.  Re-locking an entity already held (including
        upgrade attempts) raises :class:`~repro.errors.LockError`: in the
        paper's model a transaction locks each entity exactly once, in the
        strongest mode it will need.
        """
        if self.holds(txn, entity) is not None:
            raise LockError(
                f"{txn} already holds a lock on {entity!r}; the model does "
                f"not permit re-locking or upgrades"
            )
        if txn in self._waiting:
            raise LockError(f"{txn} is already waiting on {self._waiting[txn]!r}")
        state = self._locks.setdefault(entity, _EntityLockState())
        grantable = not state.queue and all(
            held.compatible_with(mode) for held in state.holders.values()
        )
        if grantable:
            # No queue, so the entity carries no waits-for edges either
            # before or after the grant: nothing to refresh.
            self._grant(txn, entity, mode)
            return True
        self._seq += 1
        state.queue.append(QueuedRequest(txn, mode, self._seq))
        self._waiting[txn] = entity
        self._refresh_waits(entity)
        return False

    def _grant(self, txn: TxnId, entity: EntityName, mode: LockMode) -> None:
        state = self._locks.setdefault(entity, _EntityLockState())
        state.holders[txn] = mode
        self._held_by_txn.setdefault(txn, {})[entity] = mode

    # -- releases -----------------------------------------------------------

    def release(self, txn: TxnId, entity: EntityName) -> list[Grant]:
        """Release *txn*'s lock on *entity* and wake grantable waiters.

        Returns the list of :class:`Grant` objects for requests promoted
        from the queue (possibly several consecutive shared requests).
        """
        if self.holds(txn, entity) is None:
            raise LockError(f"{txn} holds no lock on {entity!r}")
        state = self._locks[entity]
        del state.holders[txn]
        del self._held_by_txn[txn][entity]
        if not self._held_by_txn[txn]:
            del self._held_by_txn[txn]
        grants = self._drain(entity)
        self._refresh_waits(entity)
        return grants

    def release_many(
        self, txn: TxnId, entities: Iterable[EntityName]
    ) -> list[Grant]:
        """Release several of *txn*'s locks in one batched pass.

        All holderships are dropped first, then each affected entity's
        queue is drained and its waits-for edges refreshed exactly once —
        the single-pass wake-up a rollback's released entities get per
        engine step.  Grant order (and thus the downstream wake-up order)
        matches sequential :meth:`release` calls over the same list.
        Duplicate entries release once (a release is not re-issuable).
        """
        entities = list(dict.fromkeys(entities))
        for entity in entities:
            if self.holds(txn, entity) is None:
                raise LockError(f"{txn} holds no lock on {entity!r}")
        held = self._held_by_txn.get(txn, {})
        for entity in entities:
            del self._locks[entity].holders[txn]
            del held[entity]
        if txn in self._held_by_txn and not self._held_by_txn[txn]:
            del self._held_by_txn[txn]
        grants: list[Grant] = []
        for entity in entities:
            grants.extend(self._drain(entity))
            self._refresh_waits(entity)
        return grants

    def _drain(self, entity: EntityName) -> list[Grant]:
        """Grant queued requests from the front while compatible."""
        state = self._locks.get(entity)
        if state is None:
            return []
        grants: list[Grant] = []
        while state.queue:
            head = state.queue[0]
            if not all(
                held.compatible_with(head.mode)
                for held in state.holders.values()
            ):
                break
            state.queue.pop(0)
            del self._waiting[head.txn]
            self._grant(head.txn, entity, head.mode)
            grants.append(Grant(head.txn, entity, head.mode))
        if not state.queue and not state.holders:
            del self._locks[entity]
        return grants

    def cancel_wait(self, txn: TxnId) -> list[Grant]:
        """Withdraw *txn*'s queued request (it is being rolled back).

        Removing a queued request can unblock requests behind it, so the
        queue is re-drained and any resulting grants are returned.
        """
        entity = self._waiting.pop(txn, None)
        if entity is None:
            return []
        state = self._locks[entity]
        state.queue = [r for r in state.queue if r.txn != txn]
        grants = self._drain(entity)
        self._refresh_waits(entity)
        return grants

    def release_all(self, txn: TxnId) -> list[Grant]:
        """Release every lock *txn* holds and cancel any queued request."""
        grants = self.cancel_wait(txn)
        grants.extend(
            self.release_many(txn, list(self._held_by_txn.get(txn, {})))
        )
        return grants
