"""Locking substrate: S/X modes, lock table, and the two-phase lock manager."""

from .manager import LockManager
from .modes import EXCLUSIVE, SHARED, LockMode, compatible
from .table import Grant, LockTable, QueuedRequest

__all__ = [
    "EXCLUSIVE",
    "Grant",
    "LockManager",
    "LockMode",
    "LockTable",
    "QueuedRequest",
    "SHARED",
    "compatible",
]
