"""Two-phase lock manager.

Wraps the policy-free :class:`~repro.locking.table.LockTable` with
enforcement of the two-phase rule of Eswaran et al.: once a transaction has
performed an unlock, it may issue no further lock requests.  The paper
additionally assumes transactions are never rolled back after their first
unlock (rollback is only a response to a lock request, and a transaction in
its shrinking phase makes none); :meth:`LockManager.in_shrinking_phase` lets
the scheduler and rollback strategies exploit that guarantee, e.g. to stop
monitoring a transaction (§5's "last lock request" declaration).
"""

from __future__ import annotations

from ..errors import LockError, ProtocolViolation
from .modes import LockMode
from .table import EntityName, Grant, LockTable, TxnId


class LockManager:
    """Grants and releases S/X locks under the two-phase protocol."""

    def __init__(self) -> None:
        self.table = LockTable()
        self._shrinking: set[TxnId] = set()
        self._declared_last_lock: set[TxnId] = set()

    # -- protocol phases -------------------------------------------------

    def in_shrinking_phase(self, txn: TxnId) -> bool:
        """True once *txn* has unlocked at least one entity."""
        return txn in self._shrinking

    def declare_last_lock(self, txn: TxnId) -> None:
        """Record §5's declaration that *txn* will request no more locks.

        After this point the transaction can never be a deadlock victim, so
        rollback strategies may stop monitoring its writes.
        """
        self._declared_last_lock.add(txn)

    def past_last_lock(self, txn: TxnId) -> bool:
        """True if *txn* declared its last lock request or began unlocking."""
        return txn in self._declared_last_lock or txn in self._shrinking

    # -- lock operations ----------------------------------------------------

    def lock(self, txn: TxnId, entity: EntityName, mode: LockMode) -> bool:
        """Issue a lock request; returns True if granted immediately.

        Raises :class:`~repro.errors.ProtocolViolation` if *txn* already
        unlocked something (two-phase rule) or declared its last lock.
        """
        if txn in self._shrinking:
            raise ProtocolViolation(
                f"{txn} requested a lock on {entity!r} after unlocking: "
                f"two-phase rule violated"
            )
        if txn in self._declared_last_lock:
            raise ProtocolViolation(
                f"{txn} requested a lock on {entity!r} after declaring its "
                f"last lock request"
            )
        return self.table.request(txn, entity, mode)

    def unlock(self, txn: TxnId, entity: EntityName) -> list[Grant]:
        """Release a held lock, entering the shrinking phase."""
        if self.table.holds(txn, entity) is None:
            raise LockError(f"{txn} holds no lock on {entity!r}")
        self._shrinking.add(txn)
        return self.table.release(txn, entity)

    def release_for_rollback(
        self, txn: TxnId, entities: list[EntityName]
    ) -> list[Grant]:
        """Release locks as part of a rollback (not an unlock).

        Unlike :meth:`unlock`, this does not move the transaction into its
        shrinking phase: a rolled-back transaction will re-acquire locks as
        it re-executes.
        """
        if txn in self._shrinking:
            raise ProtocolViolation(
                f"{txn} cannot be rolled back: it already unlocked an entity"
            )
        # Batched: the victim's holderships drop first, then every
        # affected entity wakes its waiters in one pass.
        return self.table.release_many(txn, entities)

    def cancel_wait(self, txn: TxnId) -> list[Grant]:
        """Withdraw *txn*'s pending lock request (rollback of a waiter)."""
        return self.table.cancel_wait(txn)

    def finish(self, txn: TxnId) -> list[Grant]:
        """Terminate *txn*: release everything it still holds.

        The paper notes the system "may equivalently release any entities
        which a transaction has failed to unlock at the time the transaction
        terminates"; this is that release.  The terminated id's interned
        graph index is recycled (its arcs are gone with the release), so
        long-lived processes admitting an unbounded transaction stream
        keep the waits-for interner bounded.
        """
        grants = self.table.release_all(txn)
        self._shrinking.discard(txn)
        self._declared_last_lock.discard(txn)
        self.table.waits_for.forget_txn(txn)
        return grants

    def forget(self, txn: TxnId) -> None:
        """Recycle *txn*'s interned waits-for index (terminal paths that
        release locks without going through :meth:`finish`, e.g. shed)."""
        self.table.waits_for.forget_txn(txn)

    # -- convenience passthroughs -------------------------------------------

    def holds(self, txn: TxnId, entity: EntityName) -> LockMode | None:
        return self.table.holds(txn, entity)

    def locks_held(self, txn: TxnId) -> dict[EntityName, LockMode]:
        return self.table.locks_held(txn)

    def waiting_on(self, txn: TxnId) -> EntityName | None:
        return self.table.waiting_on(txn)

    def blockers_of(self, txn: TxnId) -> set[TxnId]:
        return self.table.blockers_of(txn)
