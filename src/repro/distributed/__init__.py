"""Distributed substrate (§3.3): sites, messages, and the distributed
scheduler combining site-local detection, timestamp ordering, and timeouts
with partial rollback."""

from .network import Message, MessageLog, MessageType
from .partition import Partition, explicit_partition, round_robin_partition
from .replication import ReadRecord, ReplicaDirectory, ReplicatedScheduler
from .scheduler import PROBE, WAIT_DIE, WOUND_WAIT, DistributedScheduler
from .views import DEFAULT_VNODES, HashRing, View, hash_view, stable_hash

__all__ = [
    "DEFAULT_VNODES",
    "DistributedScheduler",
    "HashRing",
    "Message",
    "MessageLog",
    "MessageType",
    "PROBE",
    "Partition",
    "ReadRecord",
    "ReplicaDirectory",
    "ReplicatedScheduler",
    "View",
    "WAIT_DIE",
    "WOUND_WAIT",
    "explicit_partition",
    "hash_view",
    "round_robin_partition",
    "stable_hash",
]
