"""Distributed substrate (§3.3): sites, messages, and the distributed
scheduler combining site-local detection, timestamp ordering, and timeouts
with partial rollback."""

from .network import Message, MessageLog, MessageType
from .partition import Partition, explicit_partition, round_robin_partition
from .scheduler import PROBE, WAIT_DIE, WOUND_WAIT, DistributedScheduler

__all__ = [
    "DistributedScheduler",
    "Message",
    "MessageLog",
    "MessageType",
    "PROBE",
    "Partition",
    "WAIT_DIE",
    "WOUND_WAIT",
    "explicit_partition",
    "round_robin_partition",
]
