"""Entity partitioning and transaction placement across sites.

A distributed database assigns each global entity to exactly one owning
site; each transaction has a *home* site where it executes.  Accessing an
entity owned elsewhere costs messages (see
:mod:`repro.distributed.network`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.transaction import TransactionProgram


@dataclass(frozen=True)
class Partition:
    """Immutable entity->site and transaction->site assignment."""

    n_sites: int
    entity_sites: Mapping[str, int]
    home_sites: Mapping[str, int]

    def site_of_entity(self, entity: str) -> int:
        if entity not in self.entity_sites:
            raise KeyError(f"entity {entity!r} not assigned to any site")
        return self.entity_sites[entity]

    def home_of(self, txn_id: str) -> int:
        if txn_id not in self.home_sites:
            raise KeyError(f"transaction {txn_id!r} has no home site")
        return self.home_sites[txn_id]

    def entities_at(self, site: int) -> set[str]:
        return {
            entity
            for entity, owner in self.entity_sites.items()
            if owner == site
        }

    def is_local(self, txn_id: str, entity: str) -> bool:
        """True iff *txn_id*'s home owns *entity*."""
        return self.home_of(txn_id) == self.site_of_entity(entity)


def round_robin_partition(
    entities: Iterable[str],
    programs: Iterable[TransactionProgram],
    n_sites: int,
) -> Partition:
    """Spread entities across sites round-robin; home each transaction at
    the site owning the first entity it locks (minimising its remote
    traffic for prefix-local programs).  Lockless programs carry no
    affinity, so they are spread round-robin across sites too — homing
    them all at site 0 made that site a hot spot at scale."""
    if n_sites < 1:
        raise ValueError("n_sites must be positive")
    entity_sites = {
        entity: i % n_sites for i, entity in enumerate(sorted(entities))
    }
    home_sites: dict[str, int] = {}
    lockless = 0
    for program in programs:
        lock_ops = program.lock_operations
        if lock_ops:
            first_entity = lock_ops[0][1].entity_name
            home_sites[program.txn_id] = entity_sites[first_entity]
        else:
            home_sites[program.txn_id] = lockless % n_sites
            lockless += 1
    return Partition(n_sites, entity_sites, home_sites)


def explicit_partition(
    entity_sites: Mapping[str, int],
    home_sites: Mapping[str, int],
) -> Partition:
    """Build a partition from explicit assignments (scenario tests)."""
    sites = set(entity_sites.values()) | set(home_sites.values())
    n_sites = (max(sites) + 1) if sites else 1
    return Partition(n_sites, dict(entity_sites), dict(home_sites))
