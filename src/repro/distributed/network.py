"""Simulated inter-site communication with message accounting.

§3.3's argument is about *communication cost*: maintaining a global
concurrency graph across sites is impractical, and partial rollback adds
value-shipping traffic when transactions move between sites.
:class:`MessageLog` counts every message the distributed layer would send,
by type, so experiments can compare deployment choices quantitatively.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field


class MessageType(enum.Enum):
    """The message vocabulary of the simulated distributed system."""

    LOCK_REQUEST = "lock-request"
    LOCK_GRANT = "lock-grant"
    LOCK_DENIED_WAIT = "lock-denied-wait"
    UNLOCK = "unlock"
    VALUE_SHIP = "value-ship"
    ROLLBACK_NOTIFY = "rollback-notify"
    WOUND = "wound"
    PROBE = "probe"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Message:
    """One simulated message between two sites."""

    sender: int
    receiver: int
    kind: MessageType
    txn_id: str
    entity: str = ""


@dataclass
class MessageLog:
    """Append-only log of inter-site messages with per-type counters.

    Messages between a site and itself are not counted (local calls are
    free), mirroring how the paper distinguishes intra-site from
    inter-site coordination.
    """

    messages: list[Message] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)

    def send(
        self,
        sender: int,
        receiver: int,
        kind: MessageType,
        txn_id: str,
        entity: str = "",
    ) -> None:
        """Record a message unless it stays within a single site."""
        if sender == receiver:
            return
        self.messages.append(Message(sender, receiver, kind, txn_id, entity))
        self.counts[kind] += 1

    @property
    def total(self) -> int:
        """Total inter-site messages sent."""
        return sum(self.counts.values())

    def count(self, kind: MessageType) -> int:
        return self.counts.get(kind, 0)

    def summary(self) -> dict[str, int]:
        """Per-type counts plus the total, for benchmark reporting."""
        result = {str(kind): count for kind, count in self.counts.items()}
        result["total"] = self.total
        return result
