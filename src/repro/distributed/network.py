"""Simulated inter-site communication with message accounting.

§3.3's argument is about *communication cost*: maintaining a global
concurrency graph across sites is impractical, and partial rollback adds
value-shipping traffic when transactions move between sites.
:class:`MessageLog` counts every message the distributed layer would send,
by type, so experiments can compare deployment choices quantitatively.

The log is also the chaos engine's interception point for *network
faults* (see :mod:`repro.resilience.faults`): an installed
:attr:`MessageLog.fault_filter` may drop, duplicate, or delay any send.
Dropped messages are counted but never delivered; duplicated messages are
delivered twice; delayed messages sit in a pending queue until
:meth:`MessageLog.flush_delayed` releases them (delivering out of send
order — reordering).  The accounting identity

``attempted == total + dropped + pending_delayed - duplicated``

holds at all times and is what the fault tests assert.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..observability.events import NULL_BUS, EventBus, EventKind


class MessageType(enum.Enum):
    """The message vocabulary of the simulated distributed system."""

    LOCK_REQUEST = "lock-request"
    LOCK_GRANT = "lock-grant"
    LOCK_DENIED_WAIT = "lock-denied-wait"
    UNLOCK = "unlock"
    VALUE_SHIP = "value-ship"
    ROLLBACK_NOTIFY = "rollback-notify"
    WOUND = "wound"
    PROBE = "probe"
    REPLICA_CATCHUP = "replica-catchup"
    LOCK_MIGRATE = "lock-migrate"

    def __str__(self) -> str:
        return self.value


class DeliveryAction(enum.Enum):
    """What a fault filter decides to do with one attempted send."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"


@dataclass(frozen=True)
class Message:
    """One simulated message between two sites.

    ``lclock`` is the sender's Lamport clock at send time (0 when the
    log predates clock stamping) — the causal substrate cross-site
    tracing uses to order hops between sites.
    """

    sender: int
    receiver: int
    kind: MessageType
    txn_id: str
    entity: str = ""
    lclock: int = 0


#: Fault filter signature: ``(send_index, message) -> DeliveryAction``.
#: ``send_index`` counts attempted inter-site sends from 0, so a seeded
#: fault plan can target exact sends deterministically.
FaultFilter = Callable[[int, Message], DeliveryAction]


@dataclass
class MessageLog:
    """Append-only log of inter-site messages with per-type counters.

    Messages between a site and itself are not counted (local calls are
    free), mirroring how the paper distinguishes intra-site from
    inter-site coordination.  ``messages``/``counts`` reflect *delivered*
    messages only; ``attempted``, ``dropped``, ``duplicated``, and the
    pending-delay queue account for injected network faults.
    """

    messages: list[Message] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)
    fault_filter: FaultFilter | None = None
    attempted: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    _delay_queue: list[Message] = field(default_factory=list)
    #: Observability bus (the recorder installs the scheduler's live bus).
    bus: EventBus = NULL_BUS
    #: Per-site Lamport clocks: send ticks the sender, delivery merges
    #: the receiver (``max(local, message) + 1``).  Purely a function of
    #: the deterministic send order, so same-seed runs stamp the same
    #: clocks — the cross-site tracing contract.
    site_clocks: dict[int, int] = field(default_factory=dict)

    def clock(self, site: int) -> int:
        """The current Lamport clock of *site*."""
        return self.site_clocks.get(site, 0)

    def send(
        self,
        sender: int,
        receiver: int,
        kind: MessageType,
        txn_id: str,
        entity: str = "",
    ) -> None:
        """Record a message unless it stays within a single site."""
        if sender == receiver:
            return
        lclock = self.site_clocks.get(sender, 0) + 1
        self.site_clocks[sender] = lclock
        message = Message(sender, receiver, kind, txn_id, entity, lclock)
        index = self.attempted
        self.attempted += 1
        action = (
            self.fault_filter(index, message)
            if self.fault_filter is not None
            else DeliveryAction.DELIVER
        )
        if action is DeliveryAction.DROP:
            self.dropped += 1
            self._publish(EventKind.MESSAGE_DROP, message)
            return
        if action is DeliveryAction.DELAY:
            self.delayed += 1
            self._delay_queue.append(message)
            self._publish(EventKind.MESSAGE_DELAY, message)
            return
        self._deliver(message)
        self._publish(EventKind.MESSAGE_SEND, message)
        if action is DeliveryAction.DUPLICATE:
            self.duplicated += 1
            self._deliver(message)
            self._publish(EventKind.MESSAGE_DUPLICATE, message)

    def _publish(self, kind: EventKind, message: Message) -> None:
        if self.bus:
            self.bus.publish(
                kind,
                message.txn_id,
                sender=message.sender,
                receiver=message.receiver,
                message=str(message.kind),
                entity=message.entity,
                lclock=message.lclock,
            )

    def _deliver(self, message: Message) -> None:
        self.messages.append(message)
        self.counts[message.kind] += 1
        self.site_clocks[message.receiver] = (
            max(self.site_clocks.get(message.receiver, 0), message.lclock)
            + 1
        )

    def flush_delayed(self, limit: int | None = None) -> int:
        """Deliver up to *limit* pending delayed messages (all by default).

        Delivery happens after later sends have already been delivered —
        the reordering a real network's variable latency produces.
        Returns the number of messages released.
        """
        n = len(self._delay_queue) if limit is None else min(
            limit, len(self._delay_queue)
        )
        for message in self._delay_queue[:n]:
            self._deliver(message)
        del self._delay_queue[:n]
        return n

    @property
    def pending_delayed(self) -> int:
        """Delayed messages not yet flushed."""
        return len(self._delay_queue)

    @property
    def total(self) -> int:
        """Total inter-site messages delivered."""
        return sum(self.counts.values())

    def count(self, kind: MessageType) -> int:
        return self.counts.get(kind, 0)

    def consistent(self) -> bool:
        """The fault-accounting identity every state must satisfy."""
        return self.total == (
            self.attempted - self.dropped - self.pending_delayed
            + self.duplicated
        )

    def summary(self) -> dict[str, int]:
        """Per-type counts plus the total, for benchmark reporting."""
        result = {str(kind): count for kind, count in self.counts.items()}
        result["total"] = self.total
        if self.attempted != self.total:
            result["attempted"] = self.attempted
            result["dropped"] = self.dropped
            result["duplicated"] = self.duplicated
            result["pending_delayed"] = self.pending_delayed
        return result
