"""Distributed concurrency control (§3.3).

The paper observes that maintaining a *global* concurrency graph across
sites is impractical, so a distributed system combines three mechanisms —
all of which compose with partial rollback:

1. **Site-local detection.**  Deadlock cycles whose every arc concerns
   entities owned by a single site are detected there exactly as in the
   centralised system and resolved by the configured victim policy with
   partial rollback.
2. **Timestamp ordering for cross-site conflicts.**  When a conflict
   involves transactions homed at different sites, no site can see the
   whole picture, so a wait/rollback decision is made from timestamps
   alone (the paper's "using timestamps ... to determine whether wait or
   rollback is used as a response to a given conflict"):

   * ``wound-wait`` — an older requester *wounds* (partially rolls back)
     a younger holder just far enough to free the entity; a younger
     requester waits.
   * ``wait-die`` — an older requester waits; a younger requester *dies*,
     rolling itself back far enough to free anything other transactions
     wait for (never below releasing one lock), then retrying.

3. **Wait timeouts.**  Mixed cycles (site-local arcs plus cross-site
   arcs each individually permitted by the timestamp rule) are invisible
   to both mechanisms; a bounded wait timeout rolls a long-blocked
   transaction back to free its contested locks, guaranteeing progress.

Message accounting follows every remote interaction: lock request/grant
round-trips, value shipping for remote exclusive updates, wounds, and
rollback notifications.
"""

from __future__ import annotations

import random

from ..admission.breaker import BreakerState, CircuitBreaker
from ..core.detection import Deadlock
from ..core.scheduler import Scheduler, StepOutcome, StepResult
from ..core.transaction import Transaction, TransactionProgram, TxnStatus
from ..core.operations import Lock
from ..graphs.concurrency import ConcurrencyGraph
from ..locking.modes import LockMode
from ..observability.events import EventKind
from ..storage.database import Database
from .network import MessageLog, MessageType
from .partition import Partition

TxnId = str

WOUND_WAIT = "wound-wait"
WAIT_DIE = "wait-die"
PROBE = "probe"


class DistributedScheduler(Scheduler):
    """A scheduler whose entities live on multiple sites.

    Parameters
    ----------
    database, strategy, policy:
        As for :class:`~repro.core.scheduler.Scheduler`; the policy applies
        to site-local deadlocks only.
    partition:
        Entity and transaction placement.
    cross_site_mode:
        ``"wound-wait"`` (default) or ``"wait-die"``.
    wait_timeout:
        Engine steps a transaction may stay blocked before the timeout
        mechanism frees its contested locks.  Must be positive.
    retry_budget:
        How many times a transaction may be rolled back by the
        distributed machinery (die, wound, timeout, local victim) before
        the ladder escalates it to a *total* restart — the livelock
        watchdog in the spirit of Theorem 2.  Escalation resets the
        count.
    backoff_base / backoff_cap:
        Every retry stalls the victim for
        ``min(cap, base * 2**(attempt-1)) + jitter`` clock steps before
        it may be scheduled again (jitter in ``[0, base)``), replacing
        the previous unbounded immediate retry.  A stalled transaction
        yields only while a competitor can use the time; when nothing
        else is runnable the backoff ends early (idling would help
        nobody).
    backoff_seed:
        Seed of the private jitter generator — same seed, same jitter
        sequence, fully reproducible runs.
    breaker_threshold:
        Denied/rolled-back requests within ``breaker_window`` clock steps
        that trip a site's circuit breaker (``0`` disables breakers, the
        default).  While a site's breaker is OPEN, lock requests against
        its entities are rerouted to degradation — the requester totally
        restarts (abandoning held progress) and stalls until the breaker
        half-opens — *without* consuming its retry budget: the site is
        the problem, not the transaction.
    breaker_window / breaker_cooldown:
        Sliding failure-count window and OPEN-state cool-down, in clock
        steps.
    """

    def __init__(
        self,
        database: Database,
        partition: Partition,
        strategy="mcs",
        policy="ordered-min-cost",
        cross_site_mode: str = WOUND_WAIT,
        wait_timeout: int = 200,
        check_consistency: bool = True,
        retry_budget: int = 8,
        backoff_base: int = 2,
        backoff_cap: int = 64,
        backoff_seed: int = 0,
        breaker_threshold: int = 0,
        breaker_window: int = 50,
        breaker_cooldown: int = 100,
    ) -> None:
        super().__init__(
            database,
            strategy=strategy,
            policy=policy,
            check_consistency=check_consistency,
        )
        if cross_site_mode not in (WOUND_WAIT, WAIT_DIE, PROBE):
            raise ValueError(
                f"cross_site_mode must be {WOUND_WAIT!r}, {WAIT_DIE!r} or "
                f"{PROBE!r}"
            )
        if wait_timeout < 1:
            raise ValueError("wait_timeout must be positive")
        if retry_budget < 1:
            raise ValueError("retry_budget must be positive")
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError(
                "backoff must satisfy 1 <= backoff_base <= backoff_cap"
            )
        self.partition = partition
        self.cross_site_mode = cross_site_mode
        self.wait_timeout = wait_timeout
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if breaker_threshold < 0:
            raise ValueError("breaker_threshold must be non-negative")
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.breaker_cooldown = breaker_cooldown
        #: Per-site circuit breakers, created on first request to a site
        #: (only when ``breaker_threshold > 0``).
        self.breakers: dict[str, CircuitBreaker] = {}
        self.message_log = MessageLog()
        #: Optional reachability predicate ``(site_a, site_b) -> bool``
        #: installed by the partition machinery (see
        #: :meth:`repro.distributed.replication.ReplicatedScheduler.on_partition`).
        #: When set, the timestamp rule and probes skip blockers that are
        #: unreachable from the requester's home — a wound or probe
        #: message cannot cross a severed link, so those conflicts stand
        #: until the wait timeout clears them.
        self.link_filter = None
        self._blocked_since: dict[TxnId, int] = {}
        self._retry_attempts: dict[TxnId, int] = {}
        self._stalled_until: dict[TxnId, int] = {}
        self._backoff_rng = random.Random(backoff_seed)
        self._clock = 0

    # -- registration with placement validation ------------------------------

    def register(self, program: TransactionProgram) -> Transaction:
        for entity in program.entities_accessed:
            self.partition.site_of_entity(entity)  # raises if unassigned
        self.partition.home_of(program.txn_id)
        return super().register(program)

    # -- retry backoff ------------------------------------------------------

    def runnable(self) -> list[TxnId]:
        """READY transactions, minus those still serving a retry backoff.

        A stalled transaction yields only while a competitor can use the
        time; when nothing else is runnable its backoff ends early, so
        every driver (engine or direct stepping) keeps making progress.
        """
        ready = super().runnable()
        if not self._stalled_until:
            return ready
        active = [
            txn_id
            for txn_id in ready
            if self._stalled_until.get(txn_id, 0) <= self._clock
        ]
        return active if active else ready

    def _penalise_retry(self, txn_id: TxnId, target_ordinal: int) -> int:
        """Account one distributed retry; return the (possibly escalated)
        rollback target.

        Each retry backs the victim off exponentially (with deterministic
        jitter) before it may run again; once the retry budget is spent a
        partial target escalates to a total restart and the count resets —
        bounded work per transaction instead of unbounded preemption.
        """
        attempts = self._retry_attempts.get(txn_id, 0) + 1
        self._retry_attempts[txn_id] = attempts
        if attempts > self.retry_budget and target_ordinal > 0:
            self.metrics.bump("restart_escalations")
            self._retry_attempts[txn_id] = 0
            target_ordinal = 0
        delay = min(
            self.backoff_cap,
            self.backoff_base * (2 ** min(attempts - 1, 30)),
        ) + self._backoff_rng.randrange(self.backoff_base)
        self._stalled_until[txn_id] = self._clock + delay
        self.metrics.bump("backoff_stalls")
        return target_ordinal

    # -- engine hook: clock and timeouts -----------------------------------

    def on_engine_step(self, step: int) -> None:
        """Advance the wait clock and fire overdue timeouts.

        Called once per engine iteration (including idle iterations when
        everything is blocked).
        """
        self._clock += 1
        for txn_id, until in list(self._stalled_until.items()):
            if until <= self._clock:
                del self._stalled_until[txn_id]
        for txn_id, since in list(self._blocked_since.items()):
            txn = self.transactions.get(txn_id)
            if txn is None or txn.status is not TxnStatus.BLOCKED:
                self._blocked_since.pop(txn_id, None)
                continue
            if self._clock - since >= self.wait_timeout:
                self._timeout(txn)

    def _timeout(self, txn: Transaction) -> None:
        """Resolve a suspected invisible global deadlock.

        Rolls the timed-out transaction back to free the earliest of its
        locks that some other transaction currently waits for.  When
        nothing waits on it (it is merely slow, not deadlocking anyone),
        the timer is reset instead of rolling back.
        """
        live = self.lock_manager.table.waits_for.materialize()
        waited_entities = {
            arc.entity for arc in live.holds_waited_on(txn.txn_id)
        }
        if not waited_entities:
            self._blocked_since[txn.txn_id] = self._clock
            return
        ideal = min(
            txn.record_for_entity(entity).ordinal
            for entity in waited_entities
        )
        target = self.strategy.choose_target(txn, ideal)
        self.metrics.bump("timeout_rollbacks")
        self.force_rollback(
            txn.txn_id, target, requester=txn.txn_id, ideal_ordinal=ideal
        )
        self._blocked_since.pop(txn.txn_id, None)

    # -- site reachability ---------------------------------------------------

    def _reachable(self, site_a: int, site_b: int) -> bool:
        """Whether a message can travel between two sites right now."""
        if site_a == site_b:
            return True
        if self.link_filter is None:
            return True
        return self.link_filter(site_a, site_b)

    # -- lock handling with placement, messages, and timestamp rules ----------

    def _breaker_for(self, site: str) -> CircuitBreaker | None:
        """The (lazily created) breaker guarding *site*, if enabled."""
        if not self.breaker_threshold:
            return None
        if site not in self.breakers:
            self.breakers[site] = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                window=self.breaker_window,
                cooldown=self.breaker_cooldown,
            )
        return self.breakers[site]

    def _publish_breaker(
        self, site: str, breaker: CircuitBreaker, before: BreakerState
    ) -> None:
        """Publish a BREAKER_TRANSITION if the last interaction moved the
        breaker's state machine (transitions happen inside allow /
        record_success / record_failure, so callers snapshot the state
        before the call and report here)."""
        if breaker.state is not before and self.bus:
            self.bus.publish(
                EventKind.BREAKER_TRANSITION,
                site=site,
                before=str(before),
                after=str(breaker.state),
                opened_count=breaker.opened_count,
            )

    def _reject_open_site(
        self, txn: Transaction, breaker: CircuitBreaker, site: str
    ) -> StepResult:
        """Degradation path for a request against an OPEN site.

        The requester abandons its held progress with a total restart
        (bypassing :meth:`_penalise_retry` — the site is at fault, not the
        transaction, so no retry budget is charged) and stalls until the
        breaker half-opens, so it does not spin re-issuing the request
        against a site that cannot answer.
        """
        self.metrics.bump("breaker_rejections")
        if self.bus:
            self.bus.publish(
                EventKind.BREAKER_REJECT,
                txn.txn_id,
                site=site,
                reopen_at=breaker.reopen_at(),
            )
        if txn.lock_records:
            self._notify_rollback(txn, 0)
            Scheduler.force_rollback(
                self, txn.txn_id, 0, requester=txn.txn_id, ideal_ordinal=0
            )
        self._stalled_until[txn.txn_id] = max(
            self._stalled_until.get(txn.txn_id, 0), breaker.reopen_at()
        )
        self._blocked_since.pop(txn.txn_id, None)
        return StepResult(txn.txn_id, StepOutcome.BLOCKED, actions=[])

    def _execute_lock(self, txn: Transaction, op: Lock) -> StepResult:
        home = self.partition.home_of(txn.txn_id)
        owner = self.partition.site_of_entity(op.entity_name)
        breaker = self._breaker_for(owner)
        if breaker is not None:
            before = breaker.state
            allowed = breaker.allow(self._clock)
            self._publish_breaker(owner, breaker, before)
            if not allowed:
                return self._reject_open_site(txn, breaker, owner)
        self.message_log.send(
            home, owner, MessageType.LOCK_REQUEST, txn.txn_id, op.entity_name
        )
        result = super()._execute_lock(txn, op)
        if result.outcome is StepOutcome.GRANTED:
            if breaker is not None:
                before = breaker.state
                breaker.record_success(self._clock)
                self._publish_breaker(owner, breaker, before)
            self.message_log.send(
                owner, home, MessageType.LOCK_GRANT, txn.txn_id,
                op.entity_name,
            )
            return result
        if breaker is not None:
            before = breaker.state
            tripped = breaker.record_failure(self._clock)
            self._publish_breaker(owner, breaker, before)
            if tripped:
                self.metrics.bump("breaker_opens")
        self.message_log.send(
            owner, home, MessageType.LOCK_DENIED_WAIT, txn.txn_id,
            op.entity_name,
        )
        self._blocked_since[txn.txn_id] = self._clock
        if result.outcome is StepOutcome.DEADLOCK:
            return result
        # No site-local deadlock; apply the timestamp rule to cross-site
        # conflicts before letting the wait stand.
        resolved = self._apply_timestamp_rule(txn, op)
        if resolved:
            return StepResult(txn.txn_id, StepOutcome.DEADLOCK, actions=[])
        return result

    def _detect(self, requester: TxnId) -> Deadlock | None:
        """Site-local detection: only cycles whose arcs all lie on one site
        are visible (the paper's 'deadlocks involving only a single site
        may be treated using the above means')."""
        full = self.lock_manager.table.waits_for.materialize()
        entity = self.lock_manager.waiting_on(requester)
        if entity is None:
            return None
        site = self.partition.site_of_entity(entity)
        local = ConcurrencyGraph(full.transactions)
        for arc in full.arcs:
            if self.partition.site_of_entity(arc.entity) == site:
                local.add_wait(arc.holder, arc.waiter, arc.entity)
        cycles = local.cycles_through(requester, limit=500)
        if not cycles:
            return None
        return Deadlock(requester=requester, cycles=cycles, graph=local)

    def _apply_timestamp_rule(self, txn: Transaction, op: Lock) -> bool:
        """Wound-wait / wait-die for conflicts crossing site boundaries.

        Returns True when the rule rolled someone back (the conflict is
        resolved or being resolved); False when waiting is allowed.
        """
        home = self.partition.home_of(txn.txn_id)
        # blockers_of returns a set; iterate in entry order so wound/die
        # decisions are deterministic across processes (string hashing is
        # randomised per interpreter run).
        blockers = sorted(
            (
                self.transactions[b]
                for b in self.lock_manager.blockers_of(txn.txn_id)
            ),
            key=lambda t: t.entry_order,
        )
        cross = [
            b for b in blockers
            if self.partition.home_of(b.txn_id) != home
            # A wound/die decision needs a message to (or a timestamp
            # learned from) the blocker's home; a severed link leaves the
            # wait standing for the timeout rule instead.
            and self._reachable(home, self.partition.home_of(b.txn_id))
        ]
        if self.cross_site_mode == PROBE:
            # Edge-chasing detects real global deadlocks even when every
            # individual conflict is same-home, so probes are initiated on
            # every blocked request with remote reach, not only on
            # cross-home conflicts.
            return self._probe(txn)
        if not cross:
            return False
        if self.cross_site_mode == WOUND_WAIT:
            return self._wound_wait(txn, op, cross)
        return self._wait_die(txn, cross)

    def _wound_wait(
        self, txn: Transaction, op: Lock, cross: list[Transaction]
    ) -> bool:
        """Older requester wounds younger cross-site holders."""
        wounded = False
        for blocker in cross:
            if txn.entry_order < blocker.entry_order:
                if blocker.txn_id in self.preemption_immune:
                    # The starvation watchdog aged this holder; wounding it
                    # would violate its rollback bound.  The requester
                    # waits instead (the timeout ladder still guarantees
                    # progress).
                    continue
                record = blocker.record_for_entity(op.entity_name)
                if record is None or not record.granted:
                    continue  # queued ahead, holds nothing to free
                if blocker.current_operation() is None:
                    continue  # finished; it commits (and releases) next step
                ideal = record.ordinal
                target = self.strategy.choose_target(blocker, ideal)
                self.message_log.send(
                    self.partition.home_of(txn.txn_id),
                    self.partition.home_of(blocker.txn_id),
                    MessageType.WOUND,
                    blocker.txn_id,
                    op.entity_name,
                )
                self.force_rollback(
                    blocker.txn_id, target, requester=txn.txn_id,
                    ideal_ordinal=ideal,
                )
                wounded = True
        return wounded

    def _wait_die(self, txn: Transaction, cross: list[Transaction]) -> bool:
        """Younger requester dies (partially) instead of waiting."""
        if all(txn.entry_order < b.entry_order for b in cross):
            return False  # older than every cross-site blocker: may wait
        graph = self.lock_manager.table.waits_for.materialize()
        waited = {
            arc.entity for arc in graph.holds_waited_on(txn.txn_id)
        }
        if waited:
            ideal = min(
                txn.record_for_entity(entity).ordinal for entity in waited
            )
        else:
            # Nothing waits on us: peel our most recent lock so retrying
            # makes progress for the system rather than spinning.
            granted = [r for r in txn.lock_records if r.granted]
            ideal = granted[-1].ordinal if granted else 0
        target = self.strategy.choose_target(txn, ideal)
        self.force_rollback(
            txn.txn_id, target, requester=txn.txn_id, ideal_ordinal=ideal
        )
        return True

    def _probe(self, txn: Transaction) -> bool:
        """Edge-chasing global deadlock detection (Chandy–Misra–Haas).

        A blocked transaction initiates a probe that travels along
        waits-for edges; a probe arriving back at its initiator proves a
        global cycle.  The traversal is simulated eagerly on the global
        graph, but the message log charges one PROBE per edge whose
        endpoints are homed at different sites — the real cost the paper's
        §3.3 is concerned with.  Detected deadlocks are resolved by
        partially rolling back the initiator (the CMH convention), far
        enough to release everything the cycle waits on it for.
        """
        graph = self.lock_manager.table.waits_for.materialize()
        # BFS along waiter -> blocker edges starting from the initiator.
        adjacency: dict[TxnId, set[TxnId]] = {}
        for arc in graph.arcs:
            adjacency.setdefault(arc.waiter, set()).add(arc.holder)
        initiator = txn.txn_id
        seen: set[TxnId] = set()
        frontier = [initiator]
        reached_self = False
        while frontier:
            current = frontier.pop()
            for blocker in adjacency.get(current, ()):  # probe hop
                current_home = self.partition.home_of(current)
                blocker_home = self.partition.home_of(blocker)
                if not self._reachable(current_home, blocker_home):
                    # The probe dies at the partition boundary; cycles
                    # crossing it stay invisible until the timeout rule.
                    continue
                self.message_log.send(
                    current_home,
                    blocker_home,
                    MessageType.PROBE,
                    initiator,
                )
                if blocker == initiator:
                    reached_self = True
                elif blocker not in seen:
                    seen.add(blocker)
                    frontier.append(blocker)
        if not reached_self:
            return False
        # The probe has collected the cycle membership on its way around
        # (an extended-CMH variant), so the initiator can apply the same
        # victim optimisation as the centralised system — the paper's
        # point that distribution does not invalidate rollback
        # optimisation.  One extra notify per victim is charged below via
        # _notify_rollback.
        cycles = graph.cycles_through(initiator, limit=500)
        deadlock = Deadlock(initiator, cycles, graph)
        self.metrics.bump("deadlocks")
        if self.bus:
            self.bus.publish(
                EventKind.DEADLOCK,
                initiator,
                cycles=[list(c) for c in cycles],
                probe=True,
            )
        ctx_actions = self._resolve(deadlock)
        del ctx_actions
        return True

    def force_rollback(
        self,
        txn_id: TxnId,
        target_ordinal: int,
        requester: TxnId,
        ideal_ordinal: int | None = None,
    ) -> None:
        """Every distributed rollback ships release notifications to the
        sites owning the released entities before the rollback applies,
        and charges the victim's retry ladder (backoff, then escalation to
        total restart once the budget is spent)."""
        target_ordinal = self._penalise_retry(txn_id, target_ordinal)
        self._notify_rollback(self.transaction(txn_id), target_ordinal)
        super().force_rollback(
            txn_id, target_ordinal, requester, ideal_ordinal
        )

    def shed(self, txn_id: TxnId, reason: str | None = None) -> None:
        """Shed with remote bookkeeping: notify owning sites of the lock
        releases and drop the victim's distributed retry state."""
        txn = self.transaction(txn_id)
        self._notify_rollback(txn, 0)
        if reason is None:
            super().shed(txn_id)
        else:
            super().shed(txn_id, reason)
        self._blocked_since.pop(txn_id, None)
        self._retry_attempts.pop(txn_id, None)
        self._stalled_until.pop(txn_id, None)

    def _notify_rollback(self, txn: Transaction, target: int) -> None:
        """Ship rollback notifications to remote sites whose entities the
        rollback releases (the §3.3 communication cost of partial
        rollback)."""
        home = self.partition.home_of(txn.txn_id)
        for record in txn.records_from(target):
            if not record.granted:
                continue
            owner = self.partition.site_of_entity(record.entity)
            self.message_log.send(
                home, owner, MessageType.ROLLBACK_NOTIFY, txn.txn_id,
                record.entity,
            )

    # -- unlock/commit messages -------------------------------------------------

    def _execute_unlock(self, txn: Transaction, op) -> None:
        home = self.partition.home_of(txn.txn_id)
        owner = self.partition.site_of_entity(op.entity_name)
        mode = self.lock_manager.holds(txn.txn_id, op.entity_name)
        super()._execute_unlock(txn, op)
        self.message_log.send(
            home, owner, MessageType.UNLOCK, txn.txn_id, op.entity_name
        )
        if mode is LockMode.EXCLUSIVE:
            self.message_log.send(
                home, owner, MessageType.VALUE_SHIP, txn.txn_id,
                op.entity_name,
            )

    def _commit(self, txn: Transaction) -> None:
        home = self.partition.home_of(txn.txn_id)
        held = self.lock_manager.locks_held(txn.txn_id)
        super()._commit(txn)
        for entity, mode in held.items():
            owner = self.partition.site_of_entity(entity)
            self.message_log.send(
                home, owner, MessageType.UNLOCK, txn.txn_id, entity
            )
            if mode is LockMode.EXCLUSIVE:
                self.message_log.send(
                    home, owner, MessageType.VALUE_SHIP, txn.txn_id, entity
                )
        self._blocked_since.pop(txn.txn_id, None)
        self._retry_attempts.pop(txn.txn_id, None)
        self._stalled_until.pop(txn.txn_id, None)
