"""Named partition/heal chaos scenarios over the replicated scheduler.

Each scenario is a fully seeded recipe — workload shape, topology,
replication factor, and an explicit :class:`~repro.resilience.faults.FaultPlan`
— so one name reproduces one byte-identical run anywhere.  A scenario's
*verdict* requires quiescence (every transaction committed, the final
state equal to the fault-free serial state, no oracle violation) plus a
scenario-specific fault signature, asserted over the run's metrics: a
partition drain scenario that never fired a wait timeout did not
actually exercise the §3.3 mixed-cycle path, so it fails even though the
run was "clean".

The module also backs the ``kind="distributed"`` regression cases under
``tests/regressions/`` (see :func:`load_distributed_case`): a case file
pins a scenario name and seeds, and its ``check()`` replays the scenario
and re-asserts the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..resilience.faults import FaultEvent, FaultKind, FaultPlan
from ..simulation.workload import WorkloadConfig

#: Signature predicate: metric name -> minimum value over summed segments.
Signature = dict[str, int]


@dataclass(frozen=True)
class Scenario:
    """One named chaos recipe.

    ``plan_builder`` maps the chaos seed to the explicit fault plan;
    ``signature`` names the metric minima that prove the scenario
    exercised its intended failure path.
    """

    name: str
    description: str
    config: WorkloadConfig
    sites: int
    replicate: int
    wait_timeout: int
    plan_builder: Callable[[int], FaultPlan]
    signature: Signature = field(default_factory=dict)
    cross_site_mode: str = "wound-wait"


@dataclass
class ScenarioOutcome:
    """A scenario run: the underlying chaos outcome plus the verdict."""

    scenario: str
    ok: bool
    reasons: list[str]
    chaos_outcome: object
    metrics: dict[str, int]

    @property
    def verdict(self) -> str:
        if self.ok:
            return "clean"
        return "violation:" + "; ".join(self.reasons)


def _two_group_split(sites: int) -> str:
    """The canonical near-even split spec: low half vs high half."""
    half = sites // 2
    low = ",".join(str(s) for s in range(half))
    high = ",".join(str(s) for s in range(half, sites))
    return f"{low}|{high}"


def _partition_heal_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        events=[
            FaultEvent(
                FaultKind.PARTITION, 8, arg=_two_group_split(5), duration=30
            ),
        ],
    )


def _timeout_drain_plan(seed: int) -> FaultPlan:
    # The partition covers most of the run: cross-partition conflicts
    # cannot be wounded (the message has nowhere to travel), so mixed
    # cycles stand until the wait timeout rolls a participant back.
    return FaultPlan(
        seed=seed,
        events=[
            FaultEvent(
                FaultKind.PARTITION, 2, arg=_two_group_split(4),
                duration=400,
            ),
        ],
    )


def _rolling_outage_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        events=[
            FaultEvent(FaultKind.SITE_CRASH, 6, arg="0", duration=10),
            FaultEvent(FaultKind.SITE_CRASH, 20, arg="2", duration=10),
            FaultEvent(FaultKind.SITE_CRASH, 34, arg="4", duration=10),
        ],
    )


def _split_brain_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        events=[
            FaultEvent(
                FaultKind.PARTITION, 5, arg=_two_group_split(6), duration=25
            ),
            FaultEvent(FaultKind.SITE_CRASH, 12, arg="1", duration=8),
            FaultEvent(
                FaultKind.PARTITION, 55, arg=_two_group_split(6),
                duration=15,
            ),
        ],
    )


_CONTENDED = WorkloadConfig(
    n_transactions=10,
    n_entities=6,
    locks_per_txn=(3, 5),
    write_ratio=0.8,
    skew="hotspot",
)

_MIXED = WorkloadConfig(
    n_transactions=12,
    n_entities=14,
    locks_per_txn=(2, 4),
    write_ratio=0.5,
)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="partition-heal",
            description=(
                "one mid-run partition over 5 sites (rf=2) that heals; "
                "cut-off replicas catch up before rejoining the read set"
            ),
            config=_MIXED,
            sites=5,
            replicate=2,
            wait_timeout=60,
            plan_builder=_partition_heal_plan,
            signature={"commits": 12},
        ),
        Scenario(
            name="partition-timeout-drain",
            description=(
                "a long partition over a contended workload: mixed "
                "cross-partition cycles are invisible to wound-wait "
                "(the wound cannot cross the cut) and drain only via "
                "the wait-timeout rule"
            ),
            config=_CONTENDED,
            sites=4,
            replicate=2,
            wait_timeout=30,
            plan_builder=_timeout_drain_plan,
            signature={"timeout_rollbacks": 1},
        ),
        Scenario(
            name="rolling-outage",
            description=(
                "three staggered single-site crashes with recovery: "
                "each recovering replica must catch up before serving"
            ),
            config=_MIXED,
            sites=5,
            replicate=2,
            wait_timeout=60,
            plan_builder=_rolling_outage_plan,
            signature={"replica_catchups": 1},
        ),
        Scenario(
            name="split-brain",
            description=(
                "repeated partition plus a site crash inside one half: "
                "writes miss cut-off replicas (stale skips) and the "
                "heal pays the catch-up debt"
            ),
            config=_MIXED,
            sites=6,
            replicate=3,
            wait_timeout=50,
            plan_builder=_split_brain_plan,
            signature={"commits": 12},
        ),
    )
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def run_scenario(
    name: str,
    workload_seed: int = 0,
    chaos_seed: int = 0,
    strategy: str = "mcs",
    max_steps: int = 200_000,
) -> ScenarioOutcome:
    """Run one named scenario and compute its verdict.

    Quiescence — every transaction committed and the final state equal
    to the fault-free serial state — is required of every scenario; the
    scenario's signature minima are required on top.
    """
    from ..resilience.chaos import chaos_run

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    outcome = chaos_run(
        scenario.config,
        workload_seed=workload_seed,
        chaos_seed=chaos_seed,
        strategy=strategy,
        plan=scenario.plan_builder(chaos_seed),
        sites=scenario.sites,
        replicate=scenario.replicate,
        cross_site_mode=scenario.cross_site_mode,
        wait_timeout=scenario.wait_timeout,
        max_steps=max_steps,
    )
    totals: dict[str, int] = {}
    for summary in outcome.metrics_summaries:
        for key, value in summary.items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    reasons: list[str] = []
    if outcome.violation is not None:
        reasons.append(str(outcome.violation))
    elif len(outcome.committed) < scenario.config.n_transactions:
        reasons.append(
            f"no quiescence: {len(outcome.committed)} of "
            f"{scenario.config.n_transactions} transactions committed"
        )
    for metric in sorted(scenario.signature):
        minimum = scenario.signature[metric]
        if totals.get(metric, 0) < minimum:
            reasons.append(
                f"fault signature missing: {metric} = "
                f"{totals.get(metric, 0)} < {minimum} — the scenario did "
                f"not exercise its intended failure path"
            )
    return ScenarioOutcome(
        scenario=name,
        ok=not reasons,
        reasons=reasons,
        chaos_outcome=outcome,
        metrics=totals,
    )


def run_all_scenarios(
    workload_seed: int = 0, chaos_seed: int = 0, strategy: str = "mcs"
) -> list[ScenarioOutcome]:
    return [
        run_scenario(
            name,
            workload_seed=workload_seed,
            chaos_seed=chaos_seed,
            strategy=strategy,
        )
        for name in scenario_names()
    ]


# -- regression-case integration (kind="distributed") ----------------------


@dataclass
class DistributedRegression:
    """A pinned scenario run for ``tests/regressions/`` (kind =
    ``"distributed"``): replaying it must reproduce the recorded verdict
    *and* fingerprint, so both the behaviour and the determinism of the
    distributed chaos stack are regression-locked."""

    path: str
    scenario: str
    workload_seed: int
    chaos_seed: int
    strategy: str = "mcs"
    fingerprint: str = ""

    def check(self) -> str:
        outcome = run_scenario(
            self.scenario,
            workload_seed=self.workload_seed,
            chaos_seed=self.chaos_seed,
            strategy=self.strategy,
        )
        if not outcome.ok:
            return outcome.verdict
        if self.fingerprint:
            actual = outcome.chaos_outcome.fingerprint()
            if actual != self.fingerprint:
                return (
                    f"violation:fingerprint drifted: recorded "
                    f"{self.fingerprint[:16]}…, replayed {actual[:16]}…"
                )
        return "clean"


def load_distributed_case(
    path: str, document: dict
) -> DistributedRegression:
    """Build a :class:`DistributedRegression` from a parsed case file."""
    return DistributedRegression(
        path=path,
        scenario=str(document["scenario"]),
        workload_seed=int(document.get("workload_seed", 0)),
        chaos_seed=int(document.get("chaos_seed", 0)),
        strategy=str(document.get("strategy", "mcs")),
        fingerprint=str(document.get("fingerprint", "")),
    )
