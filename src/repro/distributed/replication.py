"""Available-copies replication over a consistent-hash view.

Each entity lives on the ``rf`` distinct sites of its
:meth:`~repro.distributed.views.View.replica_sites` set (primary first).
The scheduler follows the classic *available copies* discipline:

* **read-one** — a shared lock is served by any *up, fresh* replica
  (preferring the reader's home site, then the primary); ``fresh`` means
  the replica has applied every committed write of the entity.
* **write-all-available** — an exclusive update is applied at every up,
  reachable replica; replicas that are down or cut off by a partition
  miss the write and are marked *stale*.
* **catch-up before rejoin** — a recovering (or healed) replica copies
  the missed versions from a fresh peer *before* it re-enters the read
  set; until then it serves no reads.

The bookkeeping is deliberately version-counter shaped: the
:class:`ReplicaDirectory` tracks one global committed version per entity
and one applied version per ``(entity, site)``.  The
``no-stale-read`` oracle (:mod:`repro.verification.oracles`) replays the
scheduler's :attr:`ReplicatedScheduler.read_log` and fails the run the
moment any read was served by a replica whose applied version lagged the
committed version — the safety half of the available-copies argument.

In-flight transactions and view changes: when a
:meth:`ReplicatedScheduler.change_view` moves an entity's primary while
someone holds a lock on it, the holder's lock state either *migrates*
(one LOCK_MIGRATE message per held lock, old primary to new) or the
holder is *partially rolled back* just far enough to release the moved
entities — the paper's §2 rollback-point semantics applied to topology
maintenance rather than deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import Scheduler, StepOutcome, StepResult
from ..core.transaction import Transaction
from ..core.operations import Lock
from ..locking.modes import LockMode
from ..observability.events import EventKind
from ..storage.database import Database
from .network import MessageType
from .scheduler import DistributedScheduler
from .views import View

TxnId = str

#: Steps a transaction stalls after hitting an unavailable entity before
#: it retries the request (sites recover on the same clock, so a short
#: constant beats an exponential ladder here).
UNAVAILABLE_BACKOFF = 8


@dataclass(frozen=True)
class ReadRecord:
    """One served read: which replica answered, at which versions.

    ``applied`` is the serving replica's applied version and
    ``committed`` the entity's global committed version *at serve time*;
    the no-stale-read oracle asserts ``applied == committed`` for every
    record.
    """

    txn_id: str
    entity: str
    site: int
    applied: int
    committed: int
    clock: int


class ReplicaDirectory:
    """Pure replica bookkeeping: versions, liveness, and debt.

    The directory never sends messages or publishes events — the
    scheduler orchestrates side effects so the accounting stays in one
    place.  ``behind[site]`` is the set of entities whose writes the
    site missed while down or partitioned (its catch-up work list).
    """

    def __init__(self, view: View) -> None:
        self.view = view
        self.site_up: dict[int, bool] = {s: True for s in view.sites}
        #: entity -> committed global version (0 until first write).
        self.committed: dict[str, int] = {}
        #: (entity, site) -> applied version at that replica.
        self.applied: dict[tuple[str, int], int] = {}
        #: site -> entities with missed writes (catch-up work list).
        self.behind: dict[int, set[str]] = {}

    def is_up(self, site: int) -> bool:
        return self.site_up.get(site, True)

    def committed_version(self, entity: str) -> int:
        return self.committed.get(entity, 0)

    def applied_version(self, entity: str, site: int) -> int:
        return self.applied.get((entity, site), 0)

    def fresh(self, entity: str, site: int) -> bool:
        """The replica has applied every committed write of *entity*."""
        return self.applied_version(entity, site) == self.committed_version(
            entity
        )

    def up_replicas(self, entity: str) -> list[int]:
        """Up replica sites of *entity*, primary first (write targets)."""
        return [
            site
            for site in self.view.replica_sites(entity)
            if self.is_up(site)
        ]

    def fresh_replicas(self, entity: str) -> list[int]:
        """Up *and fresh* replica sites, primary first (read targets)."""
        return [
            site for site in self.up_replicas(entity) if self.fresh(entity, site)
        ]

    def record_write(
        self, entity: str, reachable_from: int, link_ok
    ) -> tuple[list[int], list[int]]:
        """Commit one write of *entity*: bump the committed version and
        apply it at every up replica reachable from *reachable_from*.

        Returns ``(applied_sites, missed_sites)``; missed replicas are
        added to their site's catch-up work list.
        """
        version = self.committed_version(entity) + 1
        self.committed[entity] = version
        applied_sites: list[int] = []
        missed_sites: list[int] = []
        for site in self.view.replica_sites(entity):
            if self.is_up(site) and link_ok(reachable_from, site):
                # A stale replica accepts new writes but stays stale:
                # only catch-up closes the gap wholesale.
                if self.fresh_version_gap(entity, site) == 1:
                    self.applied[(entity, site)] = version
                    applied_sites.append(site)
                    continue
            missed_sites.append(site)
            self.behind.setdefault(site, set()).add(entity)
        return applied_sites, missed_sites

    def fresh_version_gap(self, entity: str, site: int) -> int:
        """How many committed versions the replica is behind (including
        the one just committed); 1 means it was fresh before this write."""
        return self.committed_version(entity) - self.applied_version(
            entity, site
        )

    def catch_up(self, entity: str, site: int) -> None:
        """Apply every missed version of *entity* at *site*."""
        self.applied[(entity, site)] = self.committed_version(entity)
        debt = self.behind.get(site)
        if debt is not None:
            debt.discard(entity)
            if not debt:
                del self.behind[site]

    def debt(self, site: int) -> list[str]:
        """Entities *site* must catch up on, in deterministic order."""
        return sorted(self.behind.get(site, ()))


class ReplicatedScheduler(DistributedScheduler):
    """Available-copies replication on top of the distributed scheduler.

    Parameters are those of :class:`DistributedScheduler` except that
    ``partition`` must be a :class:`~repro.distributed.views.View` (its
    ``rf`` fixes the replication factor).  Site liveness is driven by the
    fault injector through :meth:`site_failed` / :meth:`site_recovered`;
    partitions through :meth:`on_partition` / :meth:`on_heal`.
    """

    def __init__(
        self,
        database: Database,
        view: View,
        strategy="mcs",
        policy="ordered-min-cost",
        **kwargs,
    ) -> None:
        if not isinstance(view, View):
            raise TypeError(
                "ReplicatedScheduler requires a View (see "
                "repro.distributed.views.hash_view); use "
                "DistributedScheduler for a static Partition"
            )
        super().__init__(
            database, view, strategy=strategy, policy=policy, **kwargs
        )
        self.replication = ReplicaDirectory(view)
        #: Every served read, for the no-stale-read oracle.
        self.read_log: list[ReadRecord] = []

    @property
    def view(self) -> View:
        return self.partition

    # -- availability gate ---------------------------------------------------

    def _available_targets(self, entity: str, mode: LockMode) -> list[int]:
        if mode is LockMode.EXCLUSIVE:
            return self.replication.up_replicas(entity)
        # A read can also be served by an up-but-stale replica via an
        # on-demand catch-up from durable state, so reads need only an
        # up replica too; _serve_read pays the catch-up when it happens.
        return self.replication.up_replicas(entity)

    def _stall_unavailable(self, txn: Transaction, entity: str) -> StepResult:
        """No replica of *entity* is up: stall without queueing.

        Queueing would plant a lock record the lock manager never saw
        (the request is not sent anywhere), so the requester backs off
        and re-issues once a replica may be back.
        """
        self.metrics.bump("unavailable_stalls")
        self._stalled_until[txn.txn_id] = max(
            self._stalled_until.get(txn.txn_id, 0),
            self._clock + UNAVAILABLE_BACKOFF,
        )
        self._blocked_since.pop(txn.txn_id, None)
        return StepResult(txn.txn_id, StepOutcome.BLOCKED, actions=[])

    def _execute_lock(self, txn: Transaction, op: Lock) -> StepResult:
        if not self._available_targets(op.entity_name, op.mode):
            return self._stall_unavailable(txn, op.entity_name)
        return super()._execute_lock(txn, op)

    # -- read-one / write-all-available ------------------------------------

    def _complete_grant(self, grant) -> None:
        super()._complete_grant(grant)
        if grant.mode is LockMode.EXCLUSIVE:
            self._acquire_replica_locks(grant.txn, grant.entity)
        else:
            self._serve_read(grant.txn, grant.entity)

    def _acquire_replica_locks(self, txn_id: TxnId, entity: str) -> None:
        """Write-all-available: one lock round-trip per extra up replica
        (the primary's round-trip is already charged by the base class)."""
        home = self.partition.home_of(txn_id)
        primary = self.partition.site_of_entity(entity)
        for site in self.replication.up_replicas(entity):
            if site == primary:
                continue
            self.message_log.send(
                home, site, MessageType.LOCK_REQUEST, txn_id, entity
            )
            self.message_log.send(
                site, home, MessageType.LOCK_GRANT, txn_id, entity
            )

    def _serve_read(self, txn_id: TxnId, entity: str) -> None:
        """Read-one: pick the serving replica and log the versions."""
        home = self.partition.home_of(txn_id)
        fresh = self.replication.fresh_replicas(entity)
        if fresh:
            site = home if home in fresh else fresh[0]
        else:
            # Every fresh copy is down: the surviving replica replays its
            # durable log (an on-demand catch-up) before serving — the
            # available-copies recovery rule, charged as one catch-up.
            up = self.replication.up_replicas(entity)
            site = up[0] if up else self.partition.site_of_entity(entity)
            self._catch_up_entity(entity, site)
        self.read_log.append(
            ReadRecord(
                txn_id,
                entity,
                site,
                self.replication.applied_version(entity, site),
                self.replication.committed_version(entity),
                self._clock,
            )
        )
        if site != home:
            self.message_log.send(
                site, home, MessageType.VALUE_SHIP, txn_id, entity
            )

    def _install(self, txn_id: TxnId, entity: str, value) -> None:
        super()._install(txn_id, entity, value)
        home = self.partition.home_of(txn_id)
        applied, missed = self.replication.record_write(
            entity, home, self._reachable
        )
        primary = self.partition.site_of_entity(entity)
        for site in applied:
            if site != primary:
                # The primary's value ship is charged by the base class
                # (unlock/commit); extra replicas cost one ship each.
                self.message_log.send(
                    primary, site, MessageType.VALUE_SHIP, txn_id, entity
                )
        if missed:
            self.metrics.bump("stale_write_skips", by=len(missed))

    # -- site liveness (driven by the fault injector) -----------------------

    def site_failed(self, site: int) -> None:
        """Mark *site* down; its replicas leave the read and write sets."""
        if not self.replication.is_up(site):
            return
        self.replication.site_up[site] = False
        if self.bus:
            self.bus.publish(EventKind.SITE_FAILED, site=site)

    def site_recovered(self, site: int) -> None:
        """Mark *site* up again and catch its replicas up before they
        rejoin the read set."""
        if self.replication.is_up(site):
            return
        self.replication.site_up[site] = True
        if self.bus:
            self.bus.publish(EventKind.SITE_RECOVERED, site=site)
        self._catch_up_site(site)

    def _catch_up_site(self, site: int) -> None:
        caught_up = 0
        for entity in self.replication.debt(site):
            donor = self._donor_for(entity, site)
            if donor is None:
                continue  # no reachable fresh peer; retry at next heal
            self._catch_up_entity(entity, site, donor=donor)
            caught_up += 1
        if caught_up and self.bus:
            self.bus.publish(
                EventKind.REPLICA_CATCHUP, site=site, entities=caught_up
            )

    def _donor_for(self, entity: str, site: int) -> int | None:
        for peer in self.replication.fresh_replicas(entity):
            if peer != site and self._reachable(peer, site):
                return peer
        return None

    def _catch_up_entity(
        self, entity: str, site: int, donor: int | None = None
    ) -> None:
        if donor is None:
            donor = self._donor_for(entity, site)
        self.replication.catch_up(entity, site)
        self.metrics.bump("replica_catchups")
        if donor is not None:
            self.message_log.send(
                donor, site, MessageType.REPLICA_CATCHUP, "", entity
            )

    # -- partitions ----------------------------------------------------------

    def on_partition(self, groups: list[set[int]]) -> None:
        """A network partition: sites in different groups cannot talk."""
        membership: dict[int, int] = {}
        for index, group in enumerate(groups):
            for site in sorted(group):
                membership[site] = index

        def link_ok(a: int, b: int) -> bool:
            return membership.get(a, -1) == membership.get(b, -1)

        self.link_filter = link_ok
        if self.bus:
            self.bus.publish(
                EventKind.PARTITION_START,
                groups=[sorted(group) for group in groups],
            )

    def on_heal(self) -> None:
        """The partition heals: restore links, catch cut-off replicas up."""
        self.link_filter = None
        if self.bus:
            self.bus.publish(EventKind.PARTITION_HEAL)
        for site in sorted(self.replication.behind):
            if self.replication.is_up(site):
                self._catch_up_site(site)

    # -- view changes --------------------------------------------------------

    def change_view(self, successor: View, policy: str = "migrate") -> View:
        """Install the next topology epoch.

        ``policy`` decides the fate of in-flight transactions holding
        locks on entities whose primary moved: ``"migrate"`` ships each
        held lock's state to the new primary (one LOCK_MIGRATE message);
        ``"rollback"`` partially rolls the holder back to its last
        rollback point *before* the earliest moved lock — just far
        enough to release every moved entity (§2 semantics).  Returns
        the installed view.
        """
        if policy not in ("migrate", "rollback"):
            raise ValueError("view-change policy must be migrate or rollback")
        moved = self.partition.moved_entities(successor)
        replica_changed = self.partition.replica_changes(successor)
        old_view = self.partition
        self.partition = successor
        self.replication.view = successor
        for site in successor.sites:
            self.replication.site_up.setdefault(site, True)
        self.metrics.bump("view_changes")
        if self.bus:
            self.bus.publish(
                EventKind.VIEW_CHANGE,
                version=successor.version,
                sites=list(successor.sites),
                moved=len(moved),
            )
        # New replicas copy their entity before they may serve reads.
        for entity in sorted(replica_changed):
            old_set, new_set = replica_changed[entity]
            for site in sorted(set(new_set) - set(old_set)):
                if self.replication.fresh(entity, site):
                    continue  # never written, or already caught up
                if self.replication.is_up(site):
                    self._catch_up_entity(entity, site)
                else:
                    self.replication.behind.setdefault(site, set()).add(
                        entity
                    )
        self._handle_moved_locks(old_view, moved, policy)
        return successor

    def _handle_moved_locks(
        self, old_view: View, moved: dict[str, tuple[int, int]], policy: str
    ) -> None:
        for txn in sorted(
            self.transactions.values(), key=lambda t: t.entry_order
        ):
            if txn.done:
                continue
            held_moved = [
                record
                for record in txn.lock_records
                if record.granted and record.entity in moved
            ]
            if not held_moved:
                continue
            if policy == "migrate":
                for record in held_moved:
                    old_site, new_site = moved[record.entity]
                    self.message_log.send(
                        old_site,
                        new_site,
                        MessageType.LOCK_MIGRATE,
                        txn.txn_id,
                        record.entity,
                    )
                self.metrics.bump("lock_migrations", by=len(held_moved))
                continue
            ideal = min(record.ordinal for record in held_moved)
            target = self.strategy.choose_target(txn, ideal)
            self.metrics.bump("view_rollbacks")
            # Bypass the retry ladder: the topology moved, the
            # transaction did nothing wrong (same reasoning as the
            # breaker's degradation path).
            self._notify_rollback(txn, target)
            Scheduler.force_rollback(
                self,
                txn.txn_id,
                target,
                requester=txn.txn_id,
                ideal_ordinal=ideal,
            )
            self._blocked_since.pop(txn.txn_id, None)
