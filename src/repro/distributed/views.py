"""Dynamic entity placement: consistent-hash rings and topology views.

The static :class:`~repro.distributed.partition.Partition` pins every
entity to one site forever; a production deployment adds and removes
sites while transactions are in flight.  A :class:`View` is one immutable
epoch of the topology: a seeded consistent-hash ring (virtual nodes per
site) mapping every entity to its *primary* site and — when the view is
replicated — to its ``rf``-site replica set, plus the transaction home
map.  :meth:`View.add_site` / :meth:`View.remove_site` produce the next
epoch; consistent hashing guarantees the reshuffle is *minimal* — only
keys owned by the added/removed site move — and fully deterministic from
``(seed, vnodes, site set)``, so two processes computing the same view
change agree on every placement without coordination.

What happens to in-flight transactions holding locks on moved entities is
the scheduler's decision (migrate the lock state, or partially roll the
holder back just far enough to release the moved entities — paper §2
rollback-point semantics); see
:meth:`repro.distributed.replication.ReplicatedScheduler.change_view`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Mapping

from ..core.transaction import TransactionProgram

#: Default virtual nodes per site.  More vnodes => smoother balance at
#: the cost of a larger ring; 64 keeps the max/min entity-load ratio
#: under ~2 for realistic site counts (pinned by the property tests).
DEFAULT_VNODES = 64


def stable_hash(label: str) -> int:
    """A process-stable 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A seeded consistent-hash ring over integer site ids.

    Each site contributes ``vnodes`` points at
    ``stable_hash(f"{seed}:s{site}:v{i}")``; a key is owned by the first
    point clockwise of ``stable_hash(f"{seed}:k{key}")``.  Identical
    ``(sites, vnodes, seed)`` always build the identical ring.
    """

    def __init__(
        self,
        sites: Iterable[int],
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        self.sites: tuple[int, ...] = tuple(sorted(set(sites)))
        if not self.sites:
            raise ValueError("a hash ring needs at least one site")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        for site in self.sites:
            for v in range(vnodes):
                points.append(
                    (stable_hash(f"{seed}:s{site}:v{v}"), site)
                )
        # Ties are broken by site id so the ring is a pure function of
        # its inputs even in the (astronomically unlikely) collision case.
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def _key_point(self, key: str) -> int:
        return stable_hash(f"{self.seed}:k{key}")

    def owner(self, key: str) -> int:
        """The primary site owning *key*."""
        index = bisect_right(self._hashes, self._key_point(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def owners(self, key: str, n: int) -> tuple[int, ...]:
        """The first ``min(n, len(sites))`` *distinct* sites clockwise of
        *key* — the replica set under replication factor ``n``."""
        n = min(n, len(self.sites))
        start = bisect_right(self._hashes, self._key_point(key))
        found: list[int] = []
        size = len(self._owners)
        for offset in range(size):
            site = self._owners[(start + offset) % size]
            if site not in found:
                found.append(site)
                if len(found) == n:
                    break
        return tuple(found)

    def with_sites(self, sites: Iterable[int]) -> "HashRing":
        """A ring over a different site set, same seed and vnodes."""
        return HashRing(sites, vnodes=self.vnodes, seed=self.seed)


class View:
    """One epoch of the cluster topology.

    Exposes the :class:`~repro.distributed.partition.Partition` query API
    (``site_of_entity`` / ``home_of`` / ``entities_at`` / ``is_local`` /
    ``n_sites`` / ``home_sites``) so every consumer of a static partition
    — the distributed scheduler, the fault injector, the chaos loop —
    accepts a view unchanged.  Entity placement is immutable within a
    view; transaction homes accumulate as programs register (a home never
    moves with a view change — the transaction keeps executing where it
    started, only its *entities* move).
    """

    def __init__(
        self,
        ring: HashRing,
        entities: Iterable[str],
        rf: int = 1,
        version: int = 0,
        home_sites: Mapping[str, int] | None = None,
    ) -> None:
        if rf < 1:
            raise ValueError("replication factor must be positive")
        self.ring = ring
        self.entities: tuple[str, ...] = tuple(sorted(set(entities)))
        self.rf = rf
        self.version = version
        self.home_sites: dict[str, int] = dict(home_sites or {})
        #: Placement cache: computed once per view, read many times.
        self._primary: dict[str, int] = {
            entity: ring.owner(entity) for entity in self.entities
        }
        self._replicas: dict[str, tuple[int, ...]] = {
            entity: ring.owners(entity, rf) for entity in self.entities
        }

    # -- Partition-compatible queries ------------------------------------

    @property
    def sites(self) -> tuple[int, ...]:
        return self.ring.sites

    @property
    def n_sites(self) -> int:
        return len(self.ring.sites)

    def site_of_entity(self, entity: str) -> int:
        primary = self._primary.get(entity)
        if primary is None:
            # Dynamic placement: any key hashes somewhere; memoize so
            # repeated queries are dict hits.
            primary = self.ring.owner(entity)
            self._primary[entity] = primary
            self._replicas[entity] = self.ring.owners(entity, self.rf)
        return primary

    def home_of(self, txn_id: str) -> int:
        home = self.home_sites.get(txn_id)
        if home is None:
            # Un-registered transactions are homed by hash — balanced and
            # deterministic without any pre-assignment step.
            home = self.ring.owner(f"txn:{txn_id}")
            self.home_sites[txn_id] = home
        return home

    def assign_home(self, txn_id: str, site: int) -> None:
        if site not in self.ring.sites:
            raise ValueError(f"site {site} is not in this view")
        self.home_sites[txn_id] = site

    def entities_at(self, site: int) -> set[str]:
        return {
            entity
            for entity, owner in self._primary.items()
            if owner == site
        }

    def is_local(self, txn_id: str, entity: str) -> bool:
        return self.home_of(txn_id) == self.site_of_entity(entity)

    # -- replication queries ----------------------------------------------

    def replica_sites(self, entity: str) -> tuple[int, ...]:
        """The ``rf`` distinct sites holding a copy of *entity* (primary
        first)."""
        replicas = self._replicas.get(entity)
        if replicas is None:
            self.site_of_entity(entity)  # populates both caches
            replicas = self._replicas[entity]
        return replicas

    # -- view changes ------------------------------------------------------

    def add_site(self, site: int) -> "View":
        """The next epoch with *site* joined."""
        if site in self.ring.sites:
            raise ValueError(f"site {site} is already in the view")
        return View(
            self.ring.with_sites(self.ring.sites + (site,)),
            self.entities,
            rf=self.rf,
            version=self.version + 1,
            home_sites=self.home_sites,
        )

    def remove_site(self, site: int) -> "View":
        """The next epoch with *site* departed.

        Transactions homed at the departed site are re-homed by hash over
        the surviving sites (their home *site* is gone; their lock state
        is global and survives).
        """
        if site not in self.ring.sites:
            raise ValueError(f"site {site} is not in the view")
        if len(self.ring.sites) == 1:
            raise ValueError("cannot remove the last site")
        survivors = tuple(s for s in self.ring.sites if s != site)
        ring = self.ring.with_sites(survivors)
        homes = {
            txn_id: (
                home if home != site else ring.owner(f"txn:{txn_id}")
            )
            for txn_id, home in self.home_sites.items()
        }
        return View(
            ring,
            self.entities,
            rf=self.rf,
            version=self.version + 1,
            home_sites=homes,
        )

    def moved_entities(self, successor: "View") -> dict[str, tuple[int, int]]:
        """Entities whose *primary* owner changes between this view and
        *successor*: ``{entity: (old_site, new_site)}``.

        Consistent hashing makes this the minimal set: a single
        ``add_site``/``remove_site`` step moves only keys the new site
        claims (or the departed site owned) — the property tests pin it.
        """
        moved: dict[str, tuple[int, int]] = {}
        for entity in self.entities:
            old = self.site_of_entity(entity)
            new = successor.site_of_entity(entity)
            if old != new:
                moved[entity] = (old, new)
        return moved

    def replica_changes(
        self, successor: "View"
    ) -> dict[str, tuple[tuple[int, ...], tuple[int, ...]]]:
        """Entities whose replica *set* changes: ``{entity: (old, new)}``."""
        changed: dict[str, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        for entity in self.entities:
            old = self.replica_sites(entity)
            new = successor.replica_sites(entity)
            if set(old) != set(new):
                changed[entity] = (old, new)
        return changed

    def load_by_site(self) -> dict[int, int]:
        """Entity count per site (primary placement) — the balance the
        property tests bound."""
        load = {site: 0 for site in self.ring.sites}
        for owner in self._primary.values():
            load[owner] += 1
        return load


def hash_view(
    entities: Iterable[str],
    programs: Iterable[TransactionProgram],
    n_sites: int,
    rf: int = 1,
    vnodes: int = DEFAULT_VNODES,
    seed: int = 0,
) -> View:
    """Build the initial view for a workload (the dynamic counterpart of
    :func:`~repro.distributed.partition.round_robin_partition`).

    Transactions are homed at the primary site of the first entity they
    lock (minimising remote traffic for prefix-local programs); lockless
    programs are spread round-robin across sites.
    """
    if n_sites < 1:
        raise ValueError("n_sites must be positive")
    ring = HashRing(range(n_sites), vnodes=vnodes, seed=seed)
    view = View(ring, entities, rf=rf, version=0)
    lockless = 0
    for program in programs:
        lock_ops = program.lock_operations
        if lock_ops:
            view.assign_home(
                program.txn_id,
                view.site_of_entity(lock_ops[0][1].entity_name),
            )
        else:
            view.assign_home(program.txn_id, lockless % n_sites)
            lockless += 1
    return view
