"""Regression-case persistence: shrunk failures as checked-in files.

Every shrunk fuzzer failure can be written out as a small JSON document
(:func:`save_case` / :func:`load_case`) that pins the workload seed, the
strategy/policy pair, the oracle expected to fire, and the minimal
schedule.  ``tests/regressions/`` holds these files; its loader replays
every one on each test run and asserts the expectation recorded in the
file — ``violation:<oracle>`` for planted faults the oracles must keep
catching, ``clean`` for schedules that must stay violation-free.

:func:`render_pytest` additionally renders a case as a self-contained
pytest function, ready to paste into a test module when a regression
deserves a named, documented test of its own.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from .cases import ReplayCase, replay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..admission.stress import OverloadRegression
    from ..observability.regression import TraceRegression

FORMAT_VERSION = 1

#: Case kinds this loader understands.  ``replay`` (the default when the
#: field is absent) is a shrunk scripted-schedule case; ``overload`` pins
#: an admission-control comparison (see
#: :class:`repro.admission.stress.OverloadRegression`); ``trace`` pins a
#: recorded scenario's span timeline (see
#: :class:`repro.observability.regression.TraceRegression`);
#: ``distributed`` pins a named partition/heal chaos scenario's verdict
#: and fingerprint (see
#: :class:`repro.distributed.scenarios.DistributedRegression`).
CASE_KINDS = ("replay", "overload", "trace", "distributed")

#: Expectation values: the oracle that must fire, or no violation at all.
EXPECT_CLEAN = "clean"


def expectation_for(case: ReplayCase) -> str:
    """The expectation string recorded for *case*."""
    if case.oracle is None:
        return EXPECT_CLEAN
    return f"violation:{case.oracle}"


def save_case(case: ReplayCase, path: str | Path) -> Path:
    """Write *case* as a regression JSON file; returns the path."""
    path = Path(path)
    document = {
        "format": FORMAT_VERSION,
        "expect": expectation_for(case),
        **case.to_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_case(
    path: str | Path,
) -> tuple["ReplayCase | OverloadRegression | TraceRegression", str]:
    """Read a regression file; returns ``(case, expectation)``.

    The optional ``"kind"`` field dispatches to non-replay case types;
    ``"overload"`` cases are loaded through :mod:`repro.admission.stress`
    (imported lazily — that package imports this one's sibling modules).
    """
    document = json.loads(Path(path).read_text())
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported regression format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    expect = document.get("expect", EXPECT_CLEAN)
    kind = document.get("kind", "replay")
    if kind == "overload":
        from ..admission.stress import load_overload_case

        return load_overload_case(str(path), document), expect
    if kind == "trace":
        from ..observability.regression import load_trace_case

        return load_trace_case(str(path), document), expect
    if kind == "distributed":
        from ..distributed.scenarios import load_distributed_case

        return load_distributed_case(str(path), document), expect
    if kind != "replay":
        raise ValueError(
            f"{path}: unknown case kind {kind!r} (expected one of "
            f"{CASE_KINDS})"
        )
    return ReplayCase.from_dict(document), expect


def check_case(
    case: "ReplayCase | OverloadRegression | TraceRegression", expect: str
) -> None:
    """Replay *case* and assert the recorded expectation.

    Raises ``AssertionError`` with a triage-friendly message when the
    replayed behaviour diverges from the expectation.
    """
    if not isinstance(case, ReplayCase):
        # Non-replay kinds carry their own checker returning an
        # expectation string ("clean" or "violation:<what> <detail>").
        verdict = case.check()
        assert verdict == expect, (
            f"regression case diverged: expected {expect!r}, "
            f"got {verdict!r}"
        )
        return
    outcome = replay(case)
    if expect == EXPECT_CLEAN:
        assert outcome.violation is None, (
            f"regression case expected a clean replay but oracle fired: "
            f"{outcome.violation}"
        )
        return
    _prefix, _sep, oracle = expect.partition(":")
    assert outcome.violation is not None, (
        f"regression case expected oracle {oracle!r} to fire but the "
        f"replay was clean — the planted fault is no longer detected"
    )
    assert outcome.violation.oracle == oracle, (
        f"regression case expected oracle {oracle!r} but "
        f"{outcome.violation.oracle!r} fired: {outcome.violation}"
    )


def run_directory(directory: str | Path) -> list[tuple[Path, str]]:
    """Replay every ``*.json`` case under *directory*.

    Returns the ``(path, expectation)`` pairs that were checked; raises
    on the first divergence.
    """
    checked: list[tuple[Path, str]] = []
    for path in sorted(Path(directory).glob("*.json")):
        case, expect = load_case(path)
        check_case(case, expect)
        checked.append((path, expect))
    return checked


def render_pytest(case: ReplayCase, name: str = "test_regression") -> str:
    """A self-contained pytest function replaying *case*.

    The emitted code depends only on the public verification API, so it
    can be pasted into any module under ``tests/``.
    """
    expect = expectation_for(case)
    body = json.dumps(
        {"format": FORMAT_VERSION, "expect": expect, **case.to_dict()},
        indent=4,
        sort_keys=True,
    )
    lines = [
        f"def {name}():",
        f'    """Shrunk fuzzer failure ({expect}); see',
        "    repro.verification for the oracle definitions.\"\"\"",
        "    import json",
        "",
        "    from repro.verification.cases import ReplayCase",
        "    from repro.verification.regressions import check_case",
        "",
        f"    document = json.loads('''{body}''')",
        '    check_case(ReplayCase.from_dict(document), document["expect"])',
    ]
    return "\n".join(lines) + "\n"
