"""The instrumented run harness shared by the fuzzer and the replayer.

:func:`run_with_oracles` executes one workload through a
:class:`~repro.simulation.engine.SimulationEngine` with an
:class:`~repro.verification.oracles.OracleSuite` attached as the step
observer, then applies the post-run oracles (livelock freedom per
Theorem 2, serializable final state).  The outcome — including the exact
interleaving as a replayable schedule — comes back as a
:class:`RunOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import Scheduler
from ..core.victim import VictimPolicy
from ..errors import ReproError
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.interleaving import InterleavingPolicy, Scripted
from ..simulation.workload import (
    WorkloadConfig,
    expected_final_state,
    generate_workload,
)
from .oracles import (
    ORDERED_POLICIES,
    OracleSuite,
    OracleViolation,
    make_oracles,
)


class _StopRun(Exception):
    """Internal control flow: abort an engine run without a verdict."""


@dataclass
class RunOutcome:
    """One instrumented run: its result, schedule, and any violation."""

    strategy: str
    policy: str
    violation: OracleViolation | None
    result: SimulationResult | None
    schedule: list[str]
    fingerprint: str
    steps: int

    @property
    def ok(self) -> bool:
        return self.violation is None


def policy_name(policy: VictimPolicy | str) -> str:
    return policy if isinstance(policy, str) else policy.name


def is_ordered_policy(policy: VictimPolicy | str) -> bool:
    """Whether *policy* claims the Theorem 2 ordering discipline."""
    return policy_name(policy) in ORDERED_POLICIES


def run_with_oracles(
    config: WorkloadConfig,
    workload_seed: int,
    interleaving: InterleavingPolicy,
    strategy: str = "mcs",
    policy: VictimPolicy | str = "ordered-min-cost",
    checks: str | list[str] = "all",
    ordered: bool | None = None,
    max_steps: int = 200_000,
    livelock_window: int = 20_000,
    stop_when_scripted_exhausted: bool = False,
    fault_plan: dict | None = None,
) -> RunOutcome:
    """Run one workload under oracle observation.

    The workload is regenerated from ``(config, workload_seed)`` so a
    run is fully described by plain values — exactly what the shrinker
    and the regression loader need to replay it.  ``ordered`` overrides
    the policy-name-based inference of whether the Theorem 2 oracles
    apply (the fault-injection tests fuzz a *broken* "ordered" policy and
    must keep the oracle armed).  With
    ``stop_when_scripted_exhausted=True`` a :class:`Scripted`
    interleaving ends the run once its schedule is consumed instead of
    falling through to round-robin — replays then execute exactly the
    recorded prefix.

    ``fault_plan`` (a serialised
    :class:`~repro.resilience.faults.FaultPlan`) arms a fault injector on
    the run — the regression loader uses this to replay chaos-found
    failures.  Crash events are stripped: this harness has no recovery
    loop; crash-recovery equivalence is
    :func:`repro.resilience.chaos.chaos_run`'s job.
    """
    db, programs = generate_workload(config, seed=workload_seed)
    expected = expected_final_state(db, programs)
    scheduler = Scheduler(db, strategy=strategy, policy=policy)
    if ordered is None:
        ordered = is_ordered_policy(policy)
    exclusive_only = config.write_ratio >= 1.0
    suite = OracleSuite(
        make_oracles(
            checks, exclusive_only=exclusive_only, ordered_policy=ordered
        )
    )

    def observe(engine: SimulationEngine, event) -> None:
        suite(engine, event)
        if (
            stop_when_scripted_exhausted
            and isinstance(interleaving, Scripted)
            and interleaving.exhausted
            and not engine.scheduler.all_done
        ):
            raise _StopRun

    engine = SimulationEngine(
        scheduler,
        interleaving,
        max_steps=max_steps,
        livelock_window=livelock_window,
        on_step=observe,
    )
    if fault_plan is not None:
        # Imported lazily: repro.resilience.chaos imports this module.
        from ..resilience.faults import FaultInjector, FaultKind, FaultPlan

        plan = FaultPlan.from_dict(dict(fault_plan))
        plan.events = [
            e for e in plan.events if e.kind is not FaultKind.CRASH
        ]
        FaultInjector(plan).attach(engine)
    for program in programs:
        engine.add(program)

    violation: OracleViolation | None = None
    result: SimulationResult | None = None
    try:
        result = engine.run()
    except OracleViolation as exc:
        violation = exc
    except _StopRun:
        pass
    except ReproError as exc:
        # Any library error escaping the run — the engine's own sanity
        # machinery (undetected deadlock, lost wakeup, step-budget
        # overrun) or a lower layer (e.g. an injected StorageFault with
        # degradation disabled) — is an invariant failure from the
        # fuzzer's point of view.
        violation = OracleViolation("engine", str(exc))

    if violation is None and result is not None:
        if result.livelock_detected:
            if ordered:
                violation = OracleViolation(
                    "livelock-free",
                    f"livelock under order-respecting policy "
                    f"{policy_name(policy)!r} (Theorem 2 violated): "
                    f"{result.metrics.rollbacks} rollbacks, "
                    f"{len(result.committed)} commits",
                )
        elif result.final_state != expected:
            diff = {
                name: (result.final_state.get(name), value)
                for name, value in expected.items()
                if result.final_state.get(name) != value
            }
            violation = OracleViolation(
                "final-state",
                f"non-serializable final state under {strategy!r}: "
                f"(got, want) per entity {diff}",
            )

    return RunOutcome(
        strategy=strategy,
        policy=policy_name(policy),
        violation=violation,
        result=result,
        schedule=engine.trace.schedule(),
        fingerprint=engine.trace.fingerprint(),
        steps=len(engine.trace),
    )
