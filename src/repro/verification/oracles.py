"""Invariant oracles: machine-checked statements of the paper's theorems.

Each oracle is a small stateful checker invoked after *every* engine step
(via :data:`repro.simulation.engine.StepObserver`).  An oracle that
observes a violated invariant raises :class:`OracleViolation` at the exact
step the invariant broke, which the fuzzer then captures, replays, and
shrinks.

Oracles and their provenance:

``graph-acyclic``
    The system resolves every deadlock the moment it forms (§3), so the
    waits-for graph must be acyclic after every completed step.
``forest``
    Theorem 1: with exclusive locks only, the deadlock-free concurrency
    graph is a forest (in-degree ≤ 1 in the holder→waiter orientation,
    acyclic).  Only meaningful for exclusive-only workloads.
``cycles-through-requester``
    §3.2: every cycle closed by a single wait response passes through the
    requesting transaction, so every cycle a ``DEADLOCK`` event reports
    must contain (and, as encoded, start at) the requester.
``no-commit-loss``
    Commit is irrevocable: a committed transaction stays committed, holds
    no locks, and is never chosen as a rollback victim afterwards.
``lock-table``
    Lock-table consistency: granted lock records agree with the lock
    manager, co-holders of an entity are mutually compatible, blocked
    transactions have exactly one pending request and are queued on it.
``preemption-order``
    Theorem 2: under a time-invariant partial order, a transaction may
    only be preempted by a conflict of an *earlier* entrant, so every
    preemption arc runs old → young and no two transactions can preempt
    each other forever.  Enabled only for order-respecting policies.
``livelock-free``
    Theorem 2's consequence: an order-respecting policy cannot livelock;
    a run flagged as livelocked under such a policy is a bug.
``no-starvation``
    The overload layer's liveness contract: every admitted transaction
    reaches an *explicit* terminal state — commit, or a shed recorded in
    metrics — within a bounded number of engine steps of admission.  A
    transaction still live past the bound, or a shed with no recorded
    reason, is starvation the admission machinery failed to prevent.
``no-stale-read``
    The available-copies safety contract
    (:mod:`repro.distributed.replication`): every read a replicated
    scheduler serves must come from a replica whose applied version
    equals the entity's committed version at serve time — a recovering
    or partitioned replica must finish catch-up before rejoining the
    read set.  Silently inert on schedulers without a read log.
``graph-consistency``
    Differential contract of the incremental waits-for structure
    (:class:`~repro.graphs.incremental.IncrementalWaitsFor`): after every
    step its arc and vertex sets equal a from-scratch
    :meth:`~repro.graphs.concurrency.ConcurrencyGraph.from_lock_table`
    rebuild, and the scheduler's running copies total equals a full
    recount.  Any divergence means a lock-table mutation path (grant,
    block, release wake-up, rollback cancellation, shed) failed to
    maintain the live structure.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from ..core.scheduler import Scheduler, StepOutcome
from ..core.transaction import TxnStatus
from ..errors import SimulationError
from ..simulation.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.engine import SimulationEngine


class OracleViolation(SimulationError):
    """An invariant oracle observed a broken invariant.

    Attributes
    ----------
    oracle:
        Name of the oracle that fired.
    event:
        The trace event after which the violation was observed (``None``
        for post-run checks such as the differential oracle).
    """

    def __init__(
        self, oracle: str, message: str, event: TraceEvent | None = None
    ) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.detail = message
        self.event = event


class Oracle(abc.ABC):
    """One invariant, checked after every engine step.

    Oracles may keep state between steps (e.g. the set of transactions
    seen committed); :meth:`reset` clears it before a fresh run.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        """Raise :class:`OracleViolation` if the invariant is broken."""

    def reset(self) -> None:
        """Clear per-run state."""

    def _fail(self, message: str, event: TraceEvent) -> None:
        raise OracleViolation(self.name, message, event)


class GraphAcyclicOracle(Oracle):
    """After every completed step the waits-for graph is cycle-free."""

    name = "graph-acyclic"

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        graph = scheduler.concurrency_graph()
        cycle = graph.find_any_cycle()
        if cycle is not None:
            self._fail(
                f"waits-for graph has unresolved cycle {cycle} after step "
                f"{event.step} ({event.txn_id} {event.outcome})",
                event,
            )


class ForestOracle(Oracle):
    """Theorem 1: exclusive-only conflict graphs are forests."""

    name = "forest"

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        graph = scheduler.concurrency_graph(include_queue_edges=False)
        if not graph.is_forest():
            self._fail(
                f"exclusive-lock conflict graph is not a forest after step "
                f"{event.step} (arcs: {sorted((a.holder, a.waiter, a.entity) for a in graph.arcs)})",
                event,
            )


class CyclesThroughRequesterOracle(Oracle):
    """§3.2: every reported deadlock cycle passes through the requester."""

    name = "cycles-through-requester"

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        if event.outcome is not StepOutcome.DEADLOCK:
            return
        if not event.cycles:
            self._fail(
                f"DEADLOCK event at step {event.step} reports no cycles",
                event,
            )
        for cycle in event.cycles:
            if event.txn_id not in cycle:
                self._fail(
                    f"cycle {cycle} at step {event.step} does not pass "
                    f"through requester {event.txn_id}",
                    event,
                )


class NoCommitLossOracle(Oracle):
    """Committed transactions keep their outcome: status stays COMMITTED,
    no locks remain held, and no later rollback selects them as victim."""

    name = "no-commit-loss"

    def __init__(self) -> None:
        self._committed: set[str] = set()
        self._rollbacks_seen = 0

    def reset(self) -> None:
        self._committed.clear()
        self._rollbacks_seen = 0

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        events = scheduler.metrics.rollback_events
        for rb in events[self._rollbacks_seen:]:
            if rb.victim in self._committed:
                self._fail(
                    f"committed transaction {rb.victim} rolled back at step "
                    f"{event.step} (requester {rb.requester})",
                    event,
                )
        self._rollbacks_seen = len(events)
        for txn_id in self._committed:
            txn = scheduler.transactions[txn_id]
            if txn.status is not TxnStatus.COMMITTED:
                self._fail(
                    f"{txn_id} committed earlier but has status "
                    f"{txn.status} at step {event.step}",
                    event,
                )
            held = scheduler.lock_manager.locks_held(txn_id)
            if held:
                self._fail(
                    f"committed transaction {txn_id} still holds locks "
                    f"{sorted(held)} at step {event.step}",
                    event,
                )
        if event.outcome is StepOutcome.COMMITTED:
            self._committed.add(event.txn_id)


class LockTableConsistencyOracle(Oracle):
    """The lock manager and the transactions' lock records agree."""

    name = "lock-table"

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        manager = scheduler.lock_manager
        for txn_id, txn in scheduler.transactions.items():
            held = manager.locks_held(txn_id)
            if txn.done:
                if held:
                    self._fail(
                        f"{txn_id} is done but holds {sorted(held)}", event
                    )
                continue
            granted = {
                r.entity: r.mode for r in txn.lock_records if r.granted
            }
            if granted != held:
                self._fail(
                    f"{txn_id}: granted records {sorted(granted)} disagree "
                    f"with lock manager {sorted(held)}",
                    event,
                )
            pending = txn.pending_request()
            waiting_on = manager.waiting_on(txn_id)
            if txn.status is TxnStatus.BLOCKED:
                if pending is None:
                    self._fail(
                        f"{txn_id} is BLOCKED without a pending lock "
                        f"record",
                        event,
                    )
                if waiting_on != pending.entity:
                    self._fail(
                        f"{txn_id} is BLOCKED on record {pending.entity!r} "
                        f"but queued on {waiting_on!r}",
                        event,
                    )
            elif waiting_on is not None:
                self._fail(
                    f"{txn_id} has status {txn.status} but is queued on "
                    f"{waiting_on!r}",
                    event,
                )
        # Co-holders of any entity must be mutually compatible (at most
        # one exclusive holder, never mixed with shared holders).
        entities = {
            entity
            for txn_id in scheduler.transactions
            for entity in manager.locks_held(txn_id)
        }
        for entity in entities:
            holders = manager.table.holders(entity)
            modes = list(holders.values())
            for i, a in enumerate(modes):
                for b in modes[i + 1:]:
                    if not a.compatible_with(b):
                        self._fail(
                            f"incompatible co-holders of {entity!r}: "
                            f"{holders}",
                            event,
                        )


class PreemptionOrderOracle(Oracle):
    """Theorem 2: preemption arcs run old → young under an ordered policy.

    Every recorded rollback whose victim is not the requester itself must
    preempt a *later* entrant (``entry_order(victim) >
    entry_order(requester)``).  Because entry order is time-invariant this
    also rules out mutual preemption pairs, which the oracle checks
    directly as a second line of defence.
    """

    name = "preemption-order"

    def __init__(self) -> None:
        self._rollbacks_seen = 0

    def reset(self) -> None:
        self._rollbacks_seen = 0

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        events = scheduler.metrics.rollback_events
        for rb in events[self._rollbacks_seen:]:
            if rb.victim == rb.requester:
                continue
            victim_order = scheduler.transactions[rb.victim].entry_order
            requester_order = scheduler.transactions[
                rb.requester
            ].entry_order
            if victim_order <= requester_order:
                self._fail(
                    f"elder preempted at step {event.step}: {rb.requester} "
                    f"(entry {requester_order}) rolled back {rb.victim} "
                    f"(entry {victim_order}); Theorem 2 requires "
                    f"victim entry order > requester entry order",
                    event,
                )
        self._rollbacks_seen = len(events)
        pairs = scheduler.metrics.mutual_preemption_pairs()
        if pairs:
            self._fail(
                f"mutual preemption pairs {sorted(pairs)} under an "
                f"ordered policy",
                event,
            )


class NoStarvationOracle(Oracle):
    """Every admitted transaction commits or is explicitly shed in time.

    Parameters
    ----------
    limit:
        Engine steps a transaction may stay live after it is first seen.
        The default is deliberately generous so the oracle stays silent on
        ordinary fuzz workloads; overload harnesses construct it with a
        bound derived from the configured deadline ladder
        (``3 * deadline_steps`` covers all three rungs, plus slack).
    """

    name = "no-starvation"

    #: Default liveness bound (steps from first sighting to terminal state).
    DEFAULT_LIMIT = 20_000

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self._first_seen: dict[str, int] = {}

    def reset(self) -> None:
        self._first_seen.clear()

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        for txn_id in sorted(scheduler.transactions):
            txn = scheduler.transactions[txn_id]
            if txn_id not in self._first_seen:
                self._first_seen[txn_id] = event.step
            if txn.status is TxnStatus.SHED and (
                txn_id not in scheduler.metrics.shed_outcomes
            ):
                self._fail(
                    f"{txn_id} was shed without a recorded reason at step "
                    f"{event.step} (sheds must be explicit)",
                    event,
                )
            if txn.done:
                continue
            elapsed = event.step - self._first_seen[txn_id]
            if elapsed > self.limit:
                self._fail(
                    f"{txn_id} still {txn.status} {elapsed} steps after "
                    f"admission (bound {self.limit}): starvation the "
                    f"admission/deadline machinery failed to prevent "
                    f"(rollback count {txn.rollback_count})",
                    event,
                )


class NoStaleReadOracle(Oracle):
    """Available-copies safety: no read served by a lagging replica.

    Replays the :class:`~repro.distributed.replication.ReplicatedScheduler`
    read log incrementally (each record carries the serving replica's
    applied version and the entity's committed version at serve time) and
    fails on the first record where they differ — a replica answered a
    read before finishing catch-up.  Schedulers without a ``read_log``
    attribute are skipped, so the oracle is safe to request everywhere.
    """

    name = "no-stale-read"

    def __init__(self) -> None:
        self._records_seen = 0

    def reset(self) -> None:
        self._records_seen = 0

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        read_log = getattr(scheduler, "read_log", None)
        if read_log is None:
            return
        for record in read_log[self._records_seen:]:
            if record.applied != record.committed:
                self._fail(
                    f"stale read at step {event.step}: {record.txn_id} read "
                    f"{record.entity!r} from site {record.site} at applied "
                    f"version {record.applied} while the committed version "
                    f"was {record.committed} — the replica rejoined the "
                    f"read set before catch-up",
                    event,
                )
        self._records_seen = len(read_log)


class GraphConsistencyOracle(Oracle):
    """Incremental waits-for graph == from-scratch rebuild, every step.

    The incremental structure is the detection hot path; this oracle is
    the harness that keeps it honest: arcs, induced vertices, and the
    incremental copies accounting are all compared against their
    full-rebuild oracles after every completed step (including rollback
    and SHED paths, which exercise the batched ``release_many`` wake-up).
    """

    name = "graph-consistency"

    def check(self, scheduler: Scheduler, event: TraceEvent) -> None:
        table = scheduler.lock_manager.table
        live = table.waits_for.arcs()
        rebuilt_graph = scheduler.detector.snapshot()
        rebuilt = {
            (arc.holder, arc.waiter, arc.entity)
            for arc in rebuilt_graph.arcs
        }
        if live != rebuilt:
            self._fail(
                f"incremental waits-for diverged from rebuild at step "
                f"{event.step} ({event.txn_id} {event.outcome}): "
                f"missing={sorted(rebuilt - live)} "
                f"spurious={sorted(live - rebuilt)}",
                event,
            )
        live_nodes = table.waits_for.transactions()
        rebuilt_nodes = rebuilt_graph.transactions
        if live_nodes != rebuilt_nodes:
            self._fail(
                f"incremental vertex set diverged at step {event.step}: "
                f"missing={sorted(rebuilt_nodes - live_nodes)} "
                f"spurious={sorted(live_nodes - rebuilt_nodes)}",
                event,
            )
        running = scheduler._flush_copies()
        recounted = scheduler._copies_total()
        if running != recounted:
            self._fail(
                f"incremental copies total {running} != recount "
                f"{recounted} at step {event.step}",
                event,
            )


#: Policies whose victim choice respects a time-invariant partial order
#: (the requester itself, or a strictly later entrant).  For these the
#: ``preemption-order`` and ``livelock-free`` oracles apply.
ORDERED_POLICIES = ("ordered-min-cost", "requester", "youngest")

#: Post-run checks the harnesses run *between* engine runs rather than at
#: every step.  ``make_oracles`` accepts these names and silently skips
#: them (no step oracle exists for them); callers that can honour them —
#: the fuzzer's sampled crash-recovery check, ``repro chaos`` — look for
#: them in the requested check list themselves.
POST_RUN_CHECKS = ("recovery-equivalence",)

_ORACLE_TYPES: dict[str, type[Oracle]] = {
    GraphAcyclicOracle.name: GraphAcyclicOracle,
    ForestOracle.name: ForestOracle,
    CyclesThroughRequesterOracle.name: CyclesThroughRequesterOracle,
    NoCommitLossOracle.name: NoCommitLossOracle,
    LockTableConsistencyOracle.name: LockTableConsistencyOracle,
    PreemptionOrderOracle.name: PreemptionOrderOracle,
    NoStarvationOracle.name: NoStarvationOracle,
    NoStaleReadOracle.name: NoStaleReadOracle,
    GraphConsistencyOracle.name: GraphConsistencyOracle,
}


def oracle_names() -> list[str]:
    """All step-oracle names, in registration order."""
    return list(_ORACLE_TYPES)


def make_oracles(
    checks: str | list[str] = "all",
    exclusive_only: bool = False,
    ordered_policy: bool = True,
) -> list[Oracle]:
    """Build the oracle set for one run.

    ``checks`` is ``"all"`` or a list/comma-string of oracle names.
    ``exclusive_only`` enables the Theorem 1 forest oracle (it only holds
    when every lock is exclusive); ``ordered_policy`` enables the
    Theorem 2 preemption-order oracle.
    """
    if isinstance(checks, str):
        requested = (
            list(_ORACLE_TYPES)
            if checks == "all"
            else [c.strip() for c in checks.split(",") if c.strip()]
        )
    else:
        requested = list(checks)
    requested = [
        name for name in requested if name not in POST_RUN_CHECKS
    ]
    unknown = [name for name in requested if name not in _ORACLE_TYPES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; choose from "
            f"{oracle_names() + list(POST_RUN_CHECKS)}"
        )
    if not exclusive_only and ForestOracle.name in requested:
        requested.remove(ForestOracle.name)
    if not ordered_policy and PreemptionOrderOracle.name in requested:
        requested.remove(PreemptionOrderOracle.name)
    return [_ORACLE_TYPES[name]() for name in requested]


class OracleSuite:
    """A bundle of oracles usable as an engine step observer.

    >>> suite = OracleSuite(make_oracles("all"))
    >>> engine = SimulationEngine(scheduler, on_step=suite)  # doctest: +SKIP
    """

    def __init__(self, oracles: list[Oracle]) -> None:
        self.oracles = oracles

    def reset(self) -> None:
        for oracle in self.oracles:
            oracle.reset()

    def __call__(
        self, engine: "SimulationEngine", event: TraceEvent
    ) -> None:
        for oracle in self.oracles:
            oracle.check(engine.scheduler, event)

    @property
    def names(self) -> list[str]:
        return [oracle.name for oracle in self.oracles]
