"""Verification subsystem: fuzzing, invariant oracles, shrinking.

The paper's central claims are structural invariants — Theorem 1's forest
criterion, Theorem 2's livelock-free ordered preemption, and the promise
that every rollback strategy preserves transaction semantics.  This
package makes them machine-checked:

* :mod:`~repro.verification.oracles` — per-step invariant oracles;
* :mod:`~repro.verification.harness` — one instrumented engine run;
* :mod:`~repro.verification.differential` — cross-strategy equivalence;
* :mod:`~repro.verification.fuzzer` — the seeded schedule fuzzer;
* :mod:`~repro.verification.shrinker` — ddmin over failing schedules;
* :mod:`~repro.verification.regressions` — shrunk failures as files;
* :mod:`~repro.verification.faults` — planted bugs proving the oracles
  bite.

See ``docs/VERIFICATION.md`` for the oracle ↔ theorem mapping and the
failure-triage workflow, and ``repro fuzz --help`` for the CLI.
"""

from .cases import ReplayCase, make_case, replay, reproduces
from .differential import (
    COPY_STRATEGIES,
    DifferentialReport,
    differential_check,
)
from .faults import (
    BrokenOrderPolicy,
    FirstCycleOnlyPolicy,
    resolve_policy,
)
from .fuzzer import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    describe_failure,
    fuzz_campaign,
    fuzz_policy,
)
from .harness import RunOutcome, run_with_oracles
from .oracles import (
    ORDERED_POLICIES,
    Oracle,
    OracleSuite,
    OracleViolation,
    make_oracles,
    oracle_names,
)
from .regressions import (
    check_case,
    load_case,
    render_pytest,
    run_directory,
    save_case,
)
from .shrinker import ShrinkResult, shrink

__all__ = [
    "BrokenOrderPolicy",
    "COPY_STRATEGIES",
    "DifferentialReport",
    "FirstCycleOnlyPolicy",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "ORDERED_POLICIES",
    "Oracle",
    "OracleSuite",
    "OracleViolation",
    "ReplayCase",
    "RunOutcome",
    "ShrinkResult",
    "check_case",
    "describe_failure",
    "differential_check",
    "fuzz_campaign",
    "fuzz_policy",
    "load_case",
    "make_case",
    "make_oracles",
    "oracle_names",
    "render_pytest",
    "replay",
    "reproduces",
    "resolve_policy",
    "run_directory",
    "run_with_oracles",
    "save_case",
    "shrink",
]
