"""Replayable failure cases: plain-data descriptions of one exact run.

A :class:`ReplayCase` pins down everything needed to re-execute a fuzzer
run step for step: the workload knobs and seed (programs are regenerated,
not stored), the strategy and victim policy by name, the oracle set, and
the interleaving as an explicit schedule of transaction ids.  Replay
drives the same engine through a
:class:`~repro.simulation.interleaving.Scripted` policy, stopping when
the schedule is exhausted, so the shrinker can treat "subset of the
schedule" as "candidate smaller failure".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from ..simulation.interleaving import Scripted
from ..simulation.workload import WorkloadConfig
from .faults import resolve_policy
from .harness import RunOutcome, run_with_oracles
from .oracles import OracleViolation


@dataclass
class ReplayCase:
    """One exact run, as plain values (JSON-serialisable; see
    :mod:`repro.verification.regressions`)."""

    workload: dict
    workload_seed: int
    strategy: str
    policy: str
    schedule: list[str]
    checks: str | list[str] = "all"
    ordered: bool | None = None
    oracle: str | None = None
    description: str = ""
    extra_steps: int = 8
    #: Optional serialised :class:`~repro.resilience.faults.FaultPlan`;
    #: replay re-arms the same injected faults (crash events are ignored —
    #: scripted replays have no recovery loop).
    fault_plan: dict | None = None

    def workload_config(self) -> WorkloadConfig:
        knobs = dict(self.workload)
        for key in ("locks_per_txn", "writes_per_entity"):
            if key in knobs:
                knobs[key] = tuple(knobs[key])
        return WorkloadConfig(**knobs)

    def with_schedule(self, schedule: list[str]) -> "ReplayCase":
        return replace(self, schedule=list(schedule))

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayCase":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})


def make_case(
    config: WorkloadConfig,
    workload_seed: int,
    outcome: RunOutcome,
    checks: str | list[str] = "all",
    ordered: bool | None = None,
    fault_plan: dict | None = None,
) -> ReplayCase:
    """Package a failing :class:`RunOutcome` as a replayable case."""
    violation = outcome.violation
    return ReplayCase(
        workload=asdict(config),
        workload_seed=workload_seed,
        strategy=outcome.strategy,
        policy=outcome.policy,
        schedule=list(outcome.schedule),
        checks=checks,
        ordered=ordered,
        oracle=violation.oracle if violation else None,
        description=str(violation) if violation else "",
        fault_plan=fault_plan,
    )


def replay(case: ReplayCase) -> RunOutcome:
    """Re-execute *case* and report what the oracles observed.

    The schedule is followed entry by entry (entries naming a transaction
    that is not currently runnable are skipped, as
    :class:`~repro.simulation.interleaving.Scripted` defines); the run
    stops once the schedule is consumed.  A budget of
    ``len(schedule) + extra_steps`` engine steps bounds pathological
    replays.
    """
    return run_with_oracles(
        case.workload_config(),
        case.workload_seed,
        Scripted(case.schedule),
        strategy=case.strategy,
        policy=resolve_policy(case.policy),
        checks=case.checks,
        ordered=case.ordered,
        max_steps=len(case.schedule) + case.extra_steps,
        livelock_window=0,
        stop_when_scripted_exhausted=True,
        fault_plan=case.fault_plan,
    )


def reproduces(case: ReplayCase) -> OracleViolation | None:
    """The violation the replay produces, if it matches the case's oracle.

    A case without a recorded oracle accepts any violation; otherwise the
    replay must fire the *same* oracle (shrinking must not wander onto a
    different bug).
    """
    outcome = replay(case)
    violation = outcome.violation
    if violation is None:
        return None
    if case.oracle is not None and violation.oracle != case.oracle:
        return None
    return violation
