"""Differential oracle: all rollback strategies agree on the outcome.

The paper's §4 presents total restart, MCS, and the single-copy strategy
as interchangeable *implementations* of the same abstract rollback — how
copies are kept must never change what a transaction computes.  The
differential oracle makes that executable: run the identical workload and
interleaving seed under every strategy (partial and total rollback alike)
and demand that each run commits every transaction and reaches the same
serializable final database state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.victim import VictimPolicy
from ..simulation.interleaving import RandomInterleaving
from ..simulation.workload import WorkloadConfig
from .harness import RunOutcome, run_with_oracles
from .oracles import OracleViolation

#: The four copy strategies plus the total-restart baseline — the full
#: partial-vs-total spectrum the differential oracle compares.
COPY_STRATEGIES = ("mcs", "single-copy", "k-copy:2", "undo-log", "total")


@dataclass
class DifferentialReport:
    """Outcome of one workload across every compared strategy."""

    outcomes: list[RunOutcome]
    violation: OracleViolation | None

    @property
    def ok(self) -> bool:
        return self.violation is None

    @property
    def steps(self) -> int:
        return sum(outcome.steps for outcome in self.outcomes)

    def failing_outcome(self) -> RunOutcome | None:
        """The outcome carrying a per-run violation, if any."""
        for outcome in self.outcomes:
            if outcome.violation is not None:
                return outcome
        return None


def differential_check(
    config: WorkloadConfig,
    workload_seed: int,
    interleave_seed: int,
    strategies: tuple[str, ...] = COPY_STRATEGIES,
    policy: VictimPolicy | str = "ordered-min-cost",
    checks: str | list[str] = "all",
    ordered: bool | None = None,
    max_steps: int = 200_000,
) -> DifferentialReport:
    """Run one workload under every strategy and compare the outcomes.

    Each strategy gets a fresh interleaving generator built from the same
    ``interleave_seed``; schedules still diverge once strategies block
    and roll back differently, which is the point — equivalent final
    states must emerge from genuinely different executions.  Per-run
    oracle violations surface first; otherwise the cross-strategy
    comparison (all committed, identical final states) is applied.
    """
    outcomes: list[RunOutcome] = []
    for strategy in strategies:
        outcome = run_with_oracles(
            config,
            workload_seed,
            RandomInterleaving(seed=interleave_seed),
            strategy=strategy,
            policy=policy,
            checks=checks,
            ordered=ordered,
            max_steps=max_steps,
        )
        outcomes.append(outcome)
        if outcome.violation is not None:
            return DifferentialReport(outcomes, outcome.violation)

    violation: OracleViolation | None = None
    reference = outcomes[0]
    expected_commits = sorted(
        p.txn_id
        for p in _regenerate_programs(config, workload_seed)
    )
    for outcome in outcomes:
        committed = sorted(outcome.result.committed)
        if committed != expected_commits:
            violation = OracleViolation(
                "differential",
                f"strategy {outcome.strategy!r} committed {committed} "
                f"instead of all of {expected_commits}",
            )
            break
        if outcome.result.final_state != reference.result.final_state:
            diff = {
                name: (
                    reference.result.final_state.get(name),
                    outcome.result.final_state.get(name),
                )
                for name in sorted(
                    set(reference.result.final_state)
                    | set(outcome.result.final_state)
                )
                if reference.result.final_state.get(name)
                != outcome.result.final_state.get(name)
            }
            violation = OracleViolation(
                "differential",
                f"final states diverge between {reference.strategy!r} and "
                f"{outcome.strategy!r}: per-entity (ref, other) {diff}",
            )
            break
    return DifferentialReport(outcomes, violation)


def _regenerate_programs(config: WorkloadConfig, workload_seed: int):
    from ..simulation.workload import generate_workload

    _db, programs = generate_workload(config, seed=workload_seed)
    return programs
