"""Deliberately broken components for exercising the oracles.

These are *test-only* fault injections: plausible implementation bugs
planted so the verification suite can prove the oracles actually catch
them (an oracle that never fires is indistinguishable from a vacuous
one).  They are registered here — not in
:func:`repro.core.victim.make_policy` — so production factories can never
construct them by accident; the replayer resolves them through
:func:`resolve_policy` when a regression case names one.
"""

from __future__ import annotations

from typing import Callable

from ..core.victim import (
    OrderedMinCostPolicy,
    RollbackAction,
    VictimContext,
    VictimPolicy,
    make_policy,
)
from ..graphs import algorithms

TxnId = str


class BrokenOrderPolicy(OrderedMinCostPolicy):
    """Theorem 2's ordering discipline with the comparison flipped.

    Where :class:`OrderedMinCostPolicy` restricts preemption to *later*
    entrants than the requester, this version restricts it to *earlier*
    entrants — the classic off-by-one-direction bug.  Every deadlock whose
    members include an elder of the requester then preempts that elder,
    which the ``preemption-order`` oracle must flag.
    """

    name = "broken-ordered-min-cost"

    def select(self, ctx: VictimContext) -> list[RollbackAction]:
        requester_order = ctx.entry_order(ctx.requester)
        elders = {
            txn_id
            for txn_id in ctx.deadlock.members
            if ctx.entry_order(txn_id) < requester_order
        }
        victims: set[TxnId] | None = None
        if elders and len(elders) <= self._exact_limit:
            try:
                victims = algorithms.min_cost_vertex_cut(
                    ctx.deadlock.cycles, cost=ctx.cost_of, candidates=elders
                )
            except ValueError:
                victims = None
        if victims is None:
            victims = {ctx.requester}
        return self._validated(ctx, victims)


class FirstCycleOnlyPolicy(VictimPolicy):
    """Resolves only the first enumerated cycle of a multi-cycle deadlock.

    With shared locks one wait can close several cycles (Figure 3); a
    resolver that forgets the rest leaves a live cycle in the waits-for
    graph, which the ``graph-acyclic`` oracle must flag on the next step.
    Victim choice within the first cycle follows the ordering discipline,
    so only the missing-cycles bug is planted.
    """

    name = "broken-first-cycle-only"

    def select(self, ctx: VictimContext) -> list[RollbackAction]:
        first = ctx.deadlock.cycles[0]
        victim = max(first, key=lambda t: (ctx.entry_order(t), t))
        # No cycle-cover validation on purpose: that check is the bug
        # being planted.
        return [ctx.action_for(victim)]


FAULT_POLICIES: dict[str, Callable[[], VictimPolicy]] = {
    BrokenOrderPolicy.name: BrokenOrderPolicy,
    FirstCycleOnlyPolicy.name: FirstCycleOnlyPolicy,
}


def resolve_policy(name: str) -> VictimPolicy:
    """A victim policy by name, checking the fault registry first.

    Production names fall through to
    :func:`repro.core.victim.make_policy`.
    """
    if name in FAULT_POLICIES:
        return FAULT_POLICIES[name]()
    return make_policy(name)
