"""The seeded schedule fuzzer: randomized workloads × interleavings ×
strategies, reproducible from one integer.

A *campaign* derives everything — workload shapes, workload seeds,
interleaving seeds — from a single base seed through a private
:class:`random.Random`, so the same seed replays the identical campaign
byte for byte (:attr:`FuzzReport.fingerprint` proves it).  Every round
generates one workload flavour and runs it through the differential
oracle across all copy strategies with the step oracles attached; any
violation is captured as a replayable case and (optionally) shrunk to a
minimal interleaving on the spot.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field

from ..core.victim import VictimPolicy
from ..simulation.workload import WorkloadConfig
from .cases import ReplayCase, make_case
from .differential import COPY_STRATEGIES, differential_check
from .oracles import POST_RUN_CHECKS, OracleViolation
from .shrinker import ShrinkResult, shrink

#: Workload-shape axes a campaign cycles through (deterministically, from
#: the campaign seed): exclusive-only rounds exercise Theorem 1's forest
#: oracle, mixed rounds exercise shared-lock multi-cycle deadlocks;
#: clustered vs scattered writes and the three-phase discipline change
#: which lock states are well defined (§5), stressing the single-copy and
#: k-copy clamping paths.
_SKEWS = ("hotspot", "uniform", "zipf")

#: Named campaign presets (``repro fuzz --profile``).  ``hot`` is the
#: high-contention shape the overload work targets: many writers fighting
#: over very few entities, where every round is deadlock-dense and the
#: rollback machinery (and its bounds) actually gets exercised.
FUZZ_PROFILES: dict[str, dict[str, object]] = {
    "default": {},
    "hot": {
        "n_transactions": 8,
        "n_entities": 3,
        "locks_per_txn": (2, 3),
        "write_ratio": 1.0,
    },
}


def apply_profile(config: "FuzzConfig", profile: str) -> "FuzzConfig":
    """A copy of *config* with the named profile's overrides applied."""
    if profile not in FUZZ_PROFILES:
        raise ValueError(
            f"unknown fuzz profile {profile!r}; choose from "
            f"{sorted(FUZZ_PROFILES)}"
        )
    from dataclasses import replace

    return replace(config, **FUZZ_PROFILES[profile])  # type: ignore[arg-type]


@dataclass
class FuzzConfig:
    """Campaign parameters; everything else derives from ``seed``."""

    seed: int = 0
    steps: int = 2_000
    checks: str | list[str] = "all"
    strategies: tuple[str, ...] = COPY_STRATEGIES
    policy: VictimPolicy | str = "ordered-min-cost"
    ordered: bool | None = None
    n_transactions: int = 5
    n_entities: int = 5
    locks_per_txn: tuple[int, int] = (2, 4)
    write_ratio: float = 0.75
    max_run_steps: int = 200_000
    shrink_failures: bool = True
    max_replays: int = 2_000
    max_failures: int = 5
    time_budget: float | None = None


@dataclass
class FuzzFailure:
    """One captured violation: the case that provokes it and, when the
    violation is tied to a single run, its shrunk form."""

    violation: OracleViolation
    round_index: int
    case: ReplayCase | None = None
    shrunk: ShrinkResult | None = None

    @property
    def minimal_schedule(self) -> list[str] | None:
        if self.shrunk is not None:
            return self.shrunk.case.schedule
        if self.case is not None:
            return self.case.schedule
        return None


@dataclass
class FuzzReport:
    """Everything one campaign did, reproducible from its config."""

    config: FuzzConfig
    rounds: int = 0
    total_steps: int = 0
    deadlocks: int = 0
    rollbacks: int = 0
    commits: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    run_fingerprints: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def fingerprint(self) -> str:
        """Hash over every run's trace fingerprint: two campaigns with
        the same seed must produce the same value."""
        digest = hashlib.sha256()
        for fp in self.run_fingerprints:
            digest.update(fp.encode())
        return digest.hexdigest()


def round_workload(
    config: FuzzConfig, round_index: int, rng: random.Random
) -> WorkloadConfig:
    """The workload flavour for one campaign round.

    Even rounds are exclusive-only (Theorem 1 territory); odd rounds mix
    in shared locks.  The remaining shape axes are drawn from the
    campaign generator, so the flavour sequence is a pure function of the
    campaign seed.
    """
    write_ratio = 1.0 if round_index % 2 == 0 else config.write_ratio
    return WorkloadConfig(
        n_transactions=config.n_transactions,
        n_entities=config.n_entities,
        locks_per_txn=config.locks_per_txn,
        write_ratio=write_ratio,
        clustered_writes=rng.random() < 0.7,
        three_phase=rng.random() < 0.2,
        skew=_SKEWS[rng.randrange(len(_SKEWS))],
    )


def _split_checks(
    checks: str | list[str],
) -> tuple[str | list[str], list[str]]:
    """Separate post-run checks (``recovery-equivalence``) from the step
    oracle names.  ``"all"`` means all *step* oracles — post-run checks
    cost a handful of extra full runs per round, so they are opt-in by
    name."""
    if isinstance(checks, str):
        if checks == "all":
            return "all", []
        items = [c.strip() for c in checks.split(",") if c.strip()]
    else:
        items = list(checks)
    post = [c for c in items if c in POST_RUN_CHECKS]
    step = [c for c in items if c not in POST_RUN_CHECKS]
    return step, post


def fuzz_campaign(config: FuzzConfig) -> FuzzReport:
    """Run one campaign until the step budget (or time budget) is spent.

    Each round: derive a workload flavour and a seed pair, then run the
    differential check across every configured strategy with all step
    oracles armed.  Violations tied to a single run are packaged as
    replayable cases and shrunk; cross-strategy (differential) violations
    are reported with the offending strategies named.  The campaign
    continues after a failure until ``max_failures`` distinct violations
    accumulate, so one bug does not mask another.
    """
    rng = random.Random(config.seed)
    report = FuzzReport(config=config)
    started = time.monotonic()
    ordered = config.ordered
    step_checks, post_checks = _split_checks(config.checks)
    while report.total_steps < config.steps:
        if (
            config.time_budget is not None
            and time.monotonic() - started >= config.time_budget
        ):
            break
        if len(report.failures) >= config.max_failures:
            break
        workload = round_workload(config, report.rounds, rng)
        workload_seed = rng.randrange(2**32)
        interleave_seed = rng.randrange(2**32)
        diff = differential_check(
            workload,
            workload_seed,
            interleave_seed,
            strategies=config.strategies,
            policy=config.policy,
            checks=step_checks,
            ordered=ordered,
            max_steps=config.max_run_steps,
        )
        report.rounds += 1
        report.total_steps += diff.steps
        for outcome in diff.outcomes:
            report.run_fingerprints.append(outcome.fingerprint)
            if outcome.result is not None:
                report.deadlocks += outcome.result.metrics.deadlocks
                report.rollbacks += outcome.result.metrics.rollbacks
                report.commits += outcome.result.metrics.commits
        if diff.violation is None and "recovery-equivalence" in post_checks:
            # Sampled crash-recovery equivalence: one strategy per round
            # (rotating), a few crash points per run.  Imported lazily —
            # repro.resilience.chaos imports this package.
            from ..resilience.chaos import recovery_equivalence_check

            strategy = config.strategies[
                (report.rounds - 1) % len(config.strategies)
            ]
            chaos_seed = rng.randrange(2**32)
            violation = recovery_equivalence_check(
                workload,
                workload_seed,
                chaos_seed,
                strategy=strategy,
                policy=config.policy,
                max_steps=config.max_run_steps,
            )
            if violation is not None:
                # Crash runs cannot be replayed by a scripted schedule
                # (the recovery loop spans several engines), so the
                # failure is recorded without a shrinkable case; the
                # chaos CLI reproduces it from the seeds.
                report.failures.append(
                    FuzzFailure(
                        violation=violation,
                        round_index=report.rounds - 1,
                    )
                )
                continue
        if diff.violation is None:
            continue
        failure = FuzzFailure(
            violation=diff.violation, round_index=report.rounds - 1
        )
        failing = diff.failing_outcome()
        if failing is not None:
            failure.case = make_case(
                workload,
                workload_seed,
                failing,
                checks=config.checks,
                ordered=ordered,
            )
            if config.shrink_failures:
                try:
                    failure.shrunk = shrink(
                        failure.case, max_replays=config.max_replays
                    )
                except ValueError:
                    # Replay did not reproduce (e.g. a violation that
                    # depends on engine-level timing the scripted replay
                    # cannot express); keep the unshrunk case.
                    failure.shrunk = None
        report.failures.append(failure)
    report.elapsed = time.monotonic() - started
    return report


def fuzz_policy(
    policy: VictimPolicy | str,
    seed: int = 0,
    steps: int = 2_000,
    ordered: bool | None = None,
    strategy: str = "mcs",
    **overrides,
) -> FuzzReport:
    """Convenience wrapper: fuzz a single (strategy, policy) pair.

    Used by the fault-injection tests: fuzz a deliberately broken policy
    with ``ordered=True`` and assert the Theorem 2 oracles catch it.
    """
    config = FuzzConfig(
        seed=seed,
        steps=steps,
        strategies=(strategy,),
        policy=policy,
        ordered=ordered,
        **overrides,
    )
    return fuzz_campaign(config)


def describe_failure(failure: FuzzFailure) -> str:
    """Human-oriented multi-line description (CLI and triage output)."""
    lines = [f"round {failure.round_index}: {failure.violation}"]
    if failure.shrunk is not None:
        lines.append(
            f"  shrunk {failure.shrunk.original_length} -> "
            f"{failure.shrunk.length} events "
            f"({failure.shrunk.replays} replays)"
        )
        lines.append(
            f"  minimal schedule: {failure.shrunk.case.schedule}"
        )
    elif failure.case is not None:
        lines.append(
            f"  schedule ({len(failure.case.schedule)} events): "
            f"{failure.case.schedule}"
        )
    return "\n".join(lines)
