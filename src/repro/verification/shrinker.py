"""Delta-debugging shrinker for failing fuzzer runs.

A failing run is a :class:`~repro.verification.cases.ReplayCase` whose
schedule (the exact interleaving, as a list of transaction ids) provokes
an oracle violation on replay.  The shrinker minimises that schedule with
Zeller's ddmin algorithm — repeatedly deleting chunks and keeping any
deletion that still reproduces the *same* oracle — followed by a
one-at-a-time sweep, yielding a 1-minimal interleaving: removing any
single remaining event makes the failure disappear.

The result is small enough to read as a scenario and can be written out
as a regression case (:mod:`repro.verification.regressions`) that the
test suite replays forever after.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cases import ReplayCase, reproduces
from .oracles import OracleViolation


@dataclass
class ShrinkResult:
    """Outcome of one shrinking session."""

    case: ReplayCase
    violation: OracleViolation
    original_length: int
    replays: int

    @property
    def length(self) -> int:
        return len(self.case.schedule)


def shrink(case: ReplayCase, max_replays: int = 2_000) -> ShrinkResult:
    """Minimise *case*'s schedule while it still reproduces its oracle.

    ``max_replays`` bounds the total number of replay executions (each is
    a full deterministic engine run over a candidate schedule); when the
    budget runs out the best case found so far is returned.  Raises
    ``ValueError`` if the original case does not reproduce at all.
    """
    violation = reproduces(case)
    if violation is None:
        raise ValueError(
            f"case does not reproduce oracle {case.oracle!r}; nothing to "
            f"shrink"
        )
    state = _ShrinkState(case, violation, budget=max_replays)
    state.ddmin()
    state.sweep()
    return ShrinkResult(
        case=state.best,
        violation=state.violation,
        original_length=len(case.schedule),
        replays=state.replays,
    )


@dataclass
class _ShrinkState:
    best: ReplayCase
    violation: OracleViolation
    budget: int
    replays: int = 0
    _tested: set[tuple[str, ...]] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._tested.add(tuple(self.best.schedule))

    def _try(self, schedule: list[str]) -> bool:
        """Replay a candidate; adopt it as the new best if it still fails."""
        key = tuple(schedule)
        if key in self._tested or self.replays >= self.budget:
            return False
        self._tested.add(key)
        self.replays += 1
        violation = reproduces(self.best.with_schedule(schedule))
        if violation is None:
            return False
        self.best = self.best.with_schedule(schedule)
        self.violation = violation
        return True

    def ddmin(self) -> None:
        """Classic ddmin over the schedule: try deleting chunks at
        doubling granularity until no chunk can be removed."""
        granularity = 2
        while len(self.best.schedule) >= 2:
            schedule = self.best.schedule
            chunk = max(1, len(schedule) // granularity)
            removed_any = False
            start = 0
            while start < len(self.best.schedule):
                schedule = self.best.schedule
                candidate = schedule[:start] + schedule[start + chunk:]
                if candidate and self._try(candidate):
                    removed_any = True
                    # Same start now addresses fresh events; do not advance.
                else:
                    start += chunk
                if self.replays >= self.budget:
                    return
            if not removed_any:
                if granularity >= len(self.best.schedule):
                    return
                granularity = min(len(self.best.schedule), granularity * 2)

    def sweep(self) -> None:
        """Final 1-minimality pass: drop single events until none can go."""
        changed = True
        while changed and self.replays < self.budget:
            changed = False
            index = len(self.best.schedule) - 1
            while index >= 0:
                schedule = self.best.schedule
                candidate = schedule[:index] + schedule[index + 1:]
                if candidate and self._try(candidate):
                    changed = True
                index -= 1
