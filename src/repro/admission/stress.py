"""Seeded overload stress runs (the ``repro overload`` CLI's engine room).

A stress run throws a contended synthetic workload at a scheduler wrapped
in an :class:`~repro.admission.guard.OverloadGuard` and reports what the
resilience layer did: throughput, shed rate, p99 commit latency (in engine
steps, arrival to commit), admission-window trajectory, and the watchdog's
verdict.  Two load shapes:

* **closed loop** (``interarrival=0``) — every transaction arrives at step
  0 and the admission queue is the only throttle (the classic MPL
  experiment);
* **open loop** (``interarrival=k``) — one arrival every *k* steps,
  regardless of completions (the overload experiment: offered load is
  independent of service rate).

Everything is driven by one seed: same config and seed, same report —
:meth:`OverloadReport.fingerprint` exists precisely to assert that.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Callable

from ..core.scheduler import Scheduler, StepOutcome
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.interleaving import RandomInterleaving
from ..simulation.workload import WorkloadConfig, generate_workload
from .controller import AdmissionController
from .deadlines import DeadlineEnforcer
from .guard import OverloadGuard
from .policies import AimdPolicy, FixedMplPolicy, PredictivePolicy
from .watchdog import StarvationWatchdog


def _workload_config(config: "OverloadConfig") -> WorkloadConfig:
    """The synthetic workload one stress config describes."""
    return WorkloadConfig(
        n_transactions=config.n_transactions,
        n_entities=config.n_entities,
        locks_per_txn=config.locks_per_txn,
        write_ratio=config.write_ratio,
    )


@dataclass
class OverloadConfig:
    """Knobs for one overload stress run.

    The workload defaults are deliberately hostile: many writers over few
    entities, the regime where unbounded admission dissolves into rollback
    churn.  Set ``admission_policy=None`` / ``deadline_steps=0`` /
    ``watchdog=False`` to switch individual pillars off (the CLI's
    baseline comparisons do exactly that).
    """

    n_transactions: int = 32
    n_entities: int = 6
    locks_per_txn: tuple[int, int] = (2, 4)
    write_ratio: float = 1.0
    interarrival: int = 0
    admission_policy: str | None = "aimd"
    mpl: int = 8
    aimd_initial: int = 8
    aimd_min_window: int = 1
    aimd_max_window: int = 32
    aimd_window_steps: int = 40
    aimd_rollback_threshold: float = 0.5
    deadline_steps: int = 600
    watchdog: bool = True
    preemption_limit: int = 4
    no_progress_window: int = 400
    strategy: str = "mcs"
    policy: str = "ordered-min-cost"
    max_steps: int = 200_000

    def __post_init__(self) -> None:
        if self.interarrival < 0:
            raise ValueError("interarrival must be non-negative")
        if self.deadline_steps < 0:
            raise ValueError("deadline_steps must be non-negative")
        if self.admission_policy not in (
            None, "fixed-mpl", "aimd", "predictive",
        ):
            raise ValueError(
                f"unknown admission policy {self.admission_policy!r}"
            )


@dataclass
class OverloadReport:
    """What one stress run did, in headline numbers."""

    seed: int
    steps: int
    submitted: int
    admitted: int
    committed: int
    shed: list[str]
    starved: list[str]
    rollbacks: int
    total_rollbacks: int
    deadline_expiries: int
    immunity_grants: int
    admission_queue_peak: int
    throughput_per_kstep: float
    shed_rate: float
    p99_latency_steps: int
    mean_latency_steps: float
    window_history: list[tuple[int, int]] = field(default_factory=list)
    watchdog_verdict: dict[str, object] = field(default_factory=dict)

    @property
    def no_starvation(self) -> bool:
        """Every admitted transaction reached an explicit terminal state."""
        return not self.starved

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic content (two runs with the same
        config and seed must agree on this)."""
        payload = {
            "seed": self.seed,
            "steps": self.steps,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "committed": self.committed,
            "shed": self.shed,
            "starved": self.starved,
            "rollbacks": self.rollbacks,
            "total_rollbacks": self.total_rollbacks,
            "deadline_expiries": self.deadline_expiries,
            "immunity_grants": self.immunity_grants,
            "admission_queue_peak": self.admission_queue_peak,
            "p99_latency_steps": self.p99_latency_steps,
            "window_history": self.window_history,
        }
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line human-readable report (CLI output)."""
        lines = [
            f"steps                {self.steps}",
            f"submitted/admitted   {self.submitted}/{self.admitted}",
            f"committed            {self.committed}",
            f"shed                 {len(self.shed)}"
            + (f" ({', '.join(self.shed)})" if self.shed else ""),
            f"starved              {len(self.starved)}"
            + (f" ({', '.join(self.starved)})" if self.starved else ""),
            f"throughput           {self.throughput_per_kstep:.2f} commits/kstep",
            f"shed rate            {self.shed_rate:.1%}",
            f"p99 commit latency   {self.p99_latency_steps} steps",
            f"mean commit latency  {self.mean_latency_steps:.1f} steps",
            f"rollbacks            {self.rollbacks} "
            f"({self.total_rollbacks} total restarts)",
            f"deadline expiries    {self.deadline_expiries}",
            f"immunity grants      {self.immunity_grants}",
            f"admission queue peak {self.admission_queue_peak}",
        ]
        if self.window_history:
            tail = ", ".join(
                f"{w}@{s}" for s, w in self.window_history[-6:]
            )
            lines.append(f"aimd window (last)   {tail}")
        if self.watchdog_verdict:
            pairs = self.watchdog_verdict.get("mutual_preemption_pairs")
            lines.append(
                "watchdog             "
                f"max preemptions {self.watchdog_verdict.get('max_preemptions')}"
                f"/{self.watchdog_verdict.get('preemption_limit')}, "
                f"suspected pairs {pairs if pairs else 'none'}"
            )
        return "\n".join(lines)


def build_guard(config: OverloadConfig, scheduler: Scheduler, seed: int) -> (
    OverloadGuard
):
    """The guard a stress run wires between engine and scheduler."""
    controller = None
    if config.admission_policy == "fixed-mpl":
        controller = AdmissionController(FixedMplPolicy(mpl=config.mpl))
    elif config.admission_policy == "aimd":
        controller = AdmissionController(
            AimdPolicy(
                initial=config.aimd_initial,
                min_window=config.aimd_min_window,
                max_window=config.aimd_max_window,
                window_steps=config.aimd_window_steps,
                rollback_threshold=config.aimd_rollback_threshold,
                seed=seed,
            )
        )
    elif config.admission_policy == "predictive":
        # Static risk analysis of the exact workload this run will
        # generate (same config, same seed — generation is pure, so no
        # execution happens here).  The policy anchors its window on the
        # analyzer's recommended MPL and reorders admission by template
        # risk.
        from ..staticcheck.workload import analyze_config

        controller = AdmissionController(
            PredictivePolicy(
                report=analyze_config(_workload_config(config), seed=seed),
                min_window=config.aimd_min_window,
                max_window=config.aimd_max_window,
                window_steps=config.aimd_window_steps,
                rollback_threshold=config.aimd_rollback_threshold,
            )
        )
    deadlines = (
        DeadlineEnforcer(config.deadline_steps)
        if config.deadline_steps
        else None
    )
    watchdog = (
        StarvationWatchdog(
            preemption_limit=config.preemption_limit,
            no_progress_window=config.no_progress_window,
        )
        if config.watchdog
        else None
    )
    return OverloadGuard(
        scheduler,
        controller=controller,
        deadlines=deadlines,
        watchdog=watchdog,
    )


def overload_run(
    config: OverloadConfig,
    seed: int = 0,
    instrument: Callable[[SimulationEngine], None] | None = None,
) -> tuple[OverloadReport, SimulationResult]:
    """One seeded stress run; returns the report and the raw result.

    ``instrument`` (if given) is called with the built engine before any
    arrival is scheduled — the hook the observability recorder uses to
    install its event bus on the scheduler.
    """
    database, programs = generate_workload(
        _workload_config(config), seed=seed
    )
    scheduler = Scheduler(
        database, strategy=config.strategy, policy=config.policy
    )
    guard = build_guard(config, scheduler, seed)
    engine = SimulationEngine(
        scheduler,
        interleaving=RandomInterleaving(seed=seed),
        max_steps=config.max_steps,
        overload=guard,
    )
    if instrument is not None:
        instrument(engine)
    arrival_steps: dict[str, int] = {}
    for index, program in enumerate(programs):
        arrival = index * config.interarrival
        arrival_steps[program.txn_id] = arrival
        engine.add_at(arrival, program)
    result = engine.run()
    return _report(config, scheduler, result, arrival_steps, guard, seed), result


def _percentile(values: list[int], fraction: float) -> int:
    if not values:
        return 0
    ordered = sorted(values)
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return ordered[index]


def _report(
    config: OverloadConfig,
    scheduler: Scheduler,
    result: SimulationResult,
    arrival_steps: dict[str, int],
    guard: OverloadGuard,
    seed: int,
) -> OverloadReport:
    metrics = scheduler.metrics
    commit_steps = {
        event.txn_id: event.step
        for event in result.trace.events(StepOutcome.COMMITTED)
    }
    latencies = [
        step - arrival_steps[txn_id]
        for txn_id, step in sorted(commit_steps.items())
        if txn_id in arrival_steps
    ]
    starved = sorted(
        txn_id
        for txn_id, txn in scheduler.transactions.items()
        if not txn.done
    )
    admitted = metrics.admitted
    window_history: list[tuple[int, int]] = []
    if guard.controller is not None:
        # Any adaptive policy (aimd, predictive) reports its trajectory.
        window_history = list(
            getattr(guard.controller.policy, "history", ())
        )
    verdict: dict[str, object] = {}
    if guard.watchdog is not None:
        verdict = guard.watchdog.verdict(scheduler)
    return OverloadReport(
        seed=seed,
        steps=result.steps,
        submitted=len(arrival_steps),
        admitted=admitted,
        committed=len(result.committed),
        shed=result.shed,
        starved=starved,
        rollbacks=metrics.rollbacks,
        total_rollbacks=metrics.total_rollbacks,
        deadline_expiries=metrics.deadline_expiries,
        immunity_grants=metrics.immunity_grants,
        admission_queue_peak=metrics.admission_queue_peak,
        throughput_per_kstep=(
            1000.0 * len(result.committed) / result.steps
            if result.steps
            else 0.0
        ),
        shed_rate=len(result.shed) / admitted if admitted else 0.0,
        p99_latency_steps=_percentile(latencies, 0.99),
        mean_latency_steps=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        window_history=window_history,
        watchdog_verdict=verdict,
    )


# -- regression-case support (tests/regressions/*.json, kind="overload") ----


@dataclass
class OverloadRegression:
    """A pinned comparison: adaptive admission vs unbounded admission.

    The check runs the same seeded workload twice — once with the AIMD
    admission gate, once with admission disabled — and asserts both that
    adaptive admission reduced the rollback count and that the exact
    counts match the pinned values (full determinism regression).
    """

    path: str
    seed: int
    config: OverloadConfig
    expect_adaptive_rollbacks: int
    expect_unbounded_rollbacks: int

    def check(self) -> str:
        adaptive, _ = overload_run(self.config, seed=self.seed)
        unbounded_config = OverloadConfig(
            **{
                **_config_dict(self.config),
                "admission_policy": None,
            }
        )
        unbounded, _ = overload_run(unbounded_config, seed=self.seed)
        if adaptive.rollbacks >= unbounded.rollbacks:
            return (
                "violation:overload adaptive admission did not reduce "
                f"rollbacks ({adaptive.rollbacks} >= {unbounded.rollbacks})"
            )
        if adaptive.rollbacks != self.expect_adaptive_rollbacks:
            return (
                "violation:overload adaptive rollbacks drifted: "
                f"{adaptive.rollbacks} != {self.expect_adaptive_rollbacks}"
            )
        if unbounded.rollbacks != self.expect_unbounded_rollbacks:
            return (
                "violation:overload unbounded rollbacks drifted: "
                f"{unbounded.rollbacks} != {self.expect_unbounded_rollbacks}"
            )
        return "clean"


def _config_dict(config: OverloadConfig) -> dict[str, object]:
    from dataclasses import asdict

    data = asdict(config)
    data["locks_per_txn"] = tuple(data["locks_per_txn"])
    return data


def load_overload_case(path: str, data: dict[str, object]) -> OverloadRegression:
    """Build an :class:`OverloadRegression` from a parsed JSON case."""
    config_data = dict(data.get("config", {}))
    if "locks_per_txn" in config_data:
        config_data["locks_per_txn"] = tuple(config_data["locks_per_txn"])
    return OverloadRegression(
        path=path,
        seed=int(data["seed"]),
        config=OverloadConfig(**config_data),
        expect_adaptive_rollbacks=int(data["expect_adaptive_rollbacks"]),
        expect_unbounded_rollbacks=int(data["expect_unbounded_rollbacks"]),
    )
