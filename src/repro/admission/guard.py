"""The overload guard: one object the simulation engine ticks per step.

:class:`OverloadGuard` composes the three step-driven admission mechanisms
— the admission controller, the deadline enforcer, and the starvation
watchdog — behind the two calls the engine makes:

* :meth:`submit` for every arrival (instead of registering directly), and
* :meth:`tick` once per engine step (including idle steps).

Each component is optional; a guard with only a watchdog is a pure
liveness monitor, a guard with only a controller is a pure MPL gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..observability.events import EventKind
from .controller import AdmissionController
from .deadlines import DeadlineEnforcer
from .watchdog import StarvationWatchdog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheduler import Scheduler
    from ..core.transaction import TransactionProgram


class OverloadGuard:
    """Admission + deadlines + watchdog, wired to one scheduler."""

    def __init__(
        self,
        scheduler: "Scheduler",
        controller: AdmissionController | None = None,
        deadlines: DeadlineEnforcer | None = None,
        watchdog: StarvationWatchdog | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.controller = controller
        self.deadlines = deadlines
        self.watchdog = watchdog

    def pending(self) -> int:
        """Arrivals queued behind the admission gate."""
        return self.controller.pending() if self.controller else 0

    def submit(self, program: "TransactionProgram", step: int) -> None:
        """Route one arrival: queue it behind the gate, or admit it now.

        Without a controller the program registers immediately (and still
        gets a deadline, when a deadline enforcer is configured).
        """
        if self.scheduler.bus:
            self.scheduler.bus.publish(
                EventKind.ADMISSION_SUBMIT,
                program.txn_id,
                gated=self.controller is not None,
            )
        if self.controller is not None:
            self.controller.submit(program)
            return
        self.scheduler.register(program)
        self.scheduler.metrics.bump("admitted")
        if self.scheduler.bus:
            self.scheduler.bus.publish(
                EventKind.ADMISSION_ADMIT, program.txn_id, immediate=True
            )
        if self.deadlines is not None:
            self.deadlines.watch(program.txn_id, step)

    def tick(self, step: int) -> None:
        """One guard step: admit, then enforce deadlines, then age.

        Admission runs first so transactions admitted this step get their
        deadline clocks started at this step.
        """
        if self.controller is not None:
            for txn_id in self.controller.tick(self.scheduler, step):
                if self.deadlines is not None:
                    self.deadlines.watch(txn_id, step)
        if self.deadlines is not None:
            self.deadlines.tick(self.scheduler, step)
        if self.watchdog is not None:
            self.watchdog.tick(self.scheduler, step)
