"""Per-site circuit breakers for the distributed scheduler.

A site whose requests keep failing (rollbacks forced on its lock holders,
wait timeouts on its entities) is not helped by more traffic — each retry
consumes budget and deepens the convoy.  The breaker is the classic
three-state machine, made fully deterministic (step-count time, no wall
clock):

* ``CLOSED`` — requests flow; failures within a sliding window are
  counted, and reaching the threshold trips the breaker.
* ``OPEN`` — requests are rejected for a fixed cool-down; the distributed
  scheduler reroutes them to degradation (a total-restart fallback)
  without charging the victim's retry budget.
* ``HALF_OPEN`` — after the cool-down a limited number of probe requests
  is allowed through: one success closes the breaker, one failure re-opens
  it for another full cool-down.
"""

from __future__ import annotations

import enum
from collections import deque


class BreakerState(enum.Enum):
    """The classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:
        return self.value


class CircuitBreaker:
    """Deterministic failure breaker over step-count time.

    Parameters
    ----------
    failure_threshold:
        Failures within *window* steps that trip a CLOSED breaker.
    window:
        Sliding-window length (steps) over which failures are counted.
    cooldown:
        Steps an OPEN breaker rejects requests before probing again.
    half_open_probes:
        Requests let through while HALF_OPEN before the verdict: if all
        of them succeed the breaker closes; any failure re-opens it.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        window: int = 50,
        cooldown: int = 100,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if window < 1 or cooldown < 1 or half_open_probes < 1:
            raise ValueError(
                "window, cooldown and half_open_probes must be positive"
            )
        self.failure_threshold = failure_threshold
        self.window = window
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.opened_count = 0
        self._failures: deque[int] = deque()
        self._opened_at = 0
        self._probes_left = 0

    def _trim(self, now: int) -> None:
        while self._failures and self._failures[0] <= now - self.window:
            self._failures.popleft()

    def reopen_at(self) -> int:
        """The step at which an OPEN breaker transitions to HALF_OPEN."""
        return self._opened_at + self.cooldown

    def allow(self, now: int) -> bool:
        """Whether a request against this site may proceed at step *now*.

        Consumes a probe slot when HALF_OPEN, so callers must follow up
        with :meth:`record_success` or :meth:`record_failure` for the
        requests they actually send.
        """
        if self.state is BreakerState.OPEN:
            if now < self.reopen_at():
                return False
            self.state = BreakerState.HALF_OPEN
            self._probes_left = self.half_open_probes
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_left <= 0:
                return False
            self._probes_left -= 1
            return True
        return True

    def record_failure(self, now: int) -> bool:
        """Account one failed request; return True if the breaker tripped
        (CLOSED/HALF_OPEN -> OPEN) at this call."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return True
        if self.state is BreakerState.OPEN:
            return False
        self._failures.append(now)
        self._trim(now)
        if len(self._failures) >= self.failure_threshold:
            self._open(now)
            return True
        return False

    def record_success(self, now: int) -> None:
        """Account one successful request (closes a HALF_OPEN breaker)."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._failures.clear()
            self._probes_left = 0

    def _open(self, now: int) -> None:
        self.state = BreakerState.OPEN
        self.opened_count += 1
        self._opened_at = now
        self._failures.clear()
        self._probes_left = 0
