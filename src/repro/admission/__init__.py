"""Overload resilience: admission control, deadlines, liveness watchdog.

The paper proves deadlock *removal* correct but leaves open what a system
should do under sustained contention overload: Figure 2 shows unrestrained
partial rollback can livelock, and Theorem 2's cure — a time-invariant
partial order on preemption — is a policy obligation, not an enforcement
mechanism.  This package supplies the enforcement layer a production-scale
system needs on top of the core scheduler:

:class:`~repro.admission.controller.AdmissionController`
    Gates how many transactions run concurrently (the multiprogramming
    level), queueing the rest; policies are pluggable (fixed MPL cap, or
    an adaptive AIMD window driven by the observed rollback rate).
:class:`~repro.admission.deadlines.DeadlineEnforcer`
    Per-transaction deadlines in engine steps, with a deterministic
    escalation ladder on expiry while blocked: partial-rollback self,
    then total restart, then shed — never a silent loop.
:class:`~repro.admission.watchdog.StarvationWatchdog`
    Tracks preemption counts and no-progress windows, grants the eldest
    starving transaction preemption immunity (Theorem 2 aging, bounding
    its rollback count), and raises a structured
    :class:`~repro.errors.LivelockDetected` when the bound is violated.
:class:`~repro.admission.breaker.CircuitBreaker`
    Per-site failure circuit breakers for the distributed scheduler.
:class:`~repro.admission.guard.OverloadGuard`
    Bundles the above into the single object
    :class:`~repro.simulation.engine.SimulationEngine` ticks each step.
:mod:`~repro.admission.stress`
    Seeded open/closed-loop overload benchmark behind ``repro overload``.
"""

from .breaker import BreakerState, CircuitBreaker
from .controller import AdmissionController
from .deadlines import DeadlineEnforcer
from .guard import OverloadGuard
from .policies import (
    AdmissionPolicy,
    AdmissionSnapshot,
    AimdPolicy,
    FixedMplPolicy,
    available_admission_policies,
    make_admission_policy,
)
from .stress import OverloadConfig, OverloadReport, overload_run
from .watchdog import StarvationWatchdog

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionSnapshot",
    "AimdPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineEnforcer",
    "FixedMplPolicy",
    "OverloadConfig",
    "OverloadGuard",
    "OverloadReport",
    "StarvationWatchdog",
    "available_admission_policies",
    "make_admission_policy",
    "overload_run",
]
