"""Per-transaction deadlines with a deterministic escalation ladder.

A transaction that blows its deadline while blocked is never left to loop
silently.  Expiries escalate through three rungs, each of which resets the
deadline clock:

1. **Partial-rollback self** — back off one lock state (cancelling the
   pending wait and freeing the most recently granted entity), the
   cheapest way to get the transaction and its convoy moving again.
2. **Total restart** — the partial retreat did not help; restart from
   lock state 0, releasing everything.
3. **Shed** — the system is overloaded beyond what retrying can fix; the
   transaction is removed with an explicit
   :data:`~repro.core.metrics.DEADLINE_EXCEEDED` outcome in metrics.

A transaction that is READY (runnable) at expiry is making progress, so
its deadline is extended rather than escalated — the ladder punishes being
*stuck*, not being slow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.transaction import TxnStatus
from ..observability.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheduler import Scheduler


class DeadlineEnforcer:
    """Tracks deadlines (in engine steps) and runs the escalation ladder.

    Parameters
    ----------
    deadline_steps:
        Steps a watched transaction gets per rung before the next
        escalation fires.
    """

    def __init__(self, deadline_steps: int = 400) -> None:
        if deadline_steps < 1:
            raise ValueError("deadline_steps must be positive")
        self.deadline_steps = deadline_steps
        self._deadline: dict[str, int] = {}
        self._rung: dict[str, int] = {}
        #: Per-transaction period overrides (see :meth:`watch`).
        self._period: dict[str, int] = {}

    def watch(
        self, txn_id: str, step: int, deadline_steps: int | None = None
    ) -> None:
        """Start the deadline clock for a newly admitted transaction.

        *deadline_steps* overrides the enforcer-wide period for this one
        transaction — the lock service maps per-request deadlines onto
        the ladder this way.  The override persists across rung resets.
        """
        if deadline_steps is not None and deadline_steps < 1:
            raise ValueError("deadline_steps must be positive")
        period = (
            self.deadline_steps if deadline_steps is None else deadline_steps
        )
        self._period[txn_id] = period
        self._deadline[txn_id] = step + period
        self._rung[txn_id] = 0

    def deadline_of(self, txn_id: str) -> int | None:
        """The current deadline step for *txn_id* (``None`` if unwatched)."""
        return self._deadline.get(txn_id)

    def tick(self, scheduler: "Scheduler", step: int) -> None:
        """Fire the ladder for every watched transaction past its deadline.

        Iteration is over sorted ids so a tick that escalates several
        transactions does so in a deterministic order.
        """
        for txn_id in sorted(self._deadline):
            txn = scheduler.transactions.get(txn_id)
            if txn is None or txn.done:
                self._deadline.pop(txn_id, None)
                self._rung.pop(txn_id, None)
                self._period.pop(txn_id, None)
                continue
            if step < self._deadline[txn_id]:
                continue
            period = self._period.get(txn_id, self.deadline_steps)
            if txn.status is not TxnStatus.BLOCKED:
                # Runnable at expiry: it can make progress, so it gets
                # another period instead of an escalation.
                self._deadline[txn_id] = step + period
                continue
            scheduler.metrics.bump("deadline_expiries")
            rung = self._rung[txn_id] = self._rung[txn_id] + 1
            if scheduler.bus:
                scheduler.bus.publish(
                    EventKind.DEADLINE_RUNG,
                    txn_id,
                    rung=rung,
                    action={1: "partial", 2: "restart"}.get(rung, "shed"),
                )
            if rung == 1:
                # Cancel the pending wait and free the most recent lock.
                ideal = max(0, txn.lock_count - 1)
                target = scheduler.strategy.choose_target(txn, ideal)
                scheduler.force_rollback(
                    txn_id, target, requester=txn_id, ideal_ordinal=ideal
                )
                scheduler.metrics.bump("deadline_partials")
                self._deadline[txn_id] = step + period
            elif rung == 2:
                scheduler.force_rollback(
                    txn_id, 0, requester=txn_id, ideal_ordinal=0
                )
                scheduler.metrics.bump("deadline_restarts")
                self._deadline[txn_id] = step + period
            else:
                scheduler.shed(txn_id)
                self._deadline.pop(txn_id, None)
                self._rung.pop(txn_id, None)
                self._period.pop(txn_id, None)
