"""The starvation watchdog: Theorem 2 aging as an enforcement mechanism.

The paper's Figure 2 shows two transactions preempting each other forever
under unconstrained min-cost victim selection; Theorem 2 cures it with a
time-invariant partial order on who may preempt whom.  The watchdog turns
that theorem into a runtime guarantee that works *regardless of the active
victim policy*:

* It tracks per-transaction preemption counts (rollbacks forced by other
  transactions) and no-progress windows (steps without the program counter
  advancing).
* When a transaction starves — its preemption count reaches the configured
  limit, or it makes no progress for a whole window — the *eldest* starving
  transaction (minimum entry order, exactly Theorem 2's suggested order) is
  granted **preemption immunity**: victim policies treat it as off-limits,
  so its rollback count stops growing and it runs to commit.  Immunity is
  exclusive — at most one transaction holds it — because immunity for two
  mutually-deadlocked transactions would leave no victim at all.
* If an immune transaction is preempted anyway (a victim policy that
  ignores the immunity set, e.g. a fault-injection policy), the bound is
  violated and the watchdog raises
  :class:`~repro.errors.LivelockDetected` carrying a full
  :class:`~repro.core.diagnosis.LivelockDiagnosis` — the waits-for
  subgraph, the preemption history, and the suspected Figure-2 pair —
  instead of letting the run spin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.diagnosis import diagnose
from ..errors import LivelockDetected
from ..observability.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheduler import Scheduler


class StarvationWatchdog:
    """Grants Theorem 2 aging immunity; detects violated rollback bounds.

    Parameters
    ----------
    preemption_limit:
        Preemptions (rollbacks forced by others) a transaction may suffer
        before it is considered starving.
    no_progress_window:
        Steps without program-counter progress after which a live
        transaction is considered starving even if rarely preempted
        (covers convoys where it is queued, not preempted).
    """

    def __init__(
        self, preemption_limit: int = 3, no_progress_window: int = 500
    ) -> None:
        if preemption_limit < 1:
            raise ValueError("preemption_limit must be positive")
        if no_progress_window < 1:
            raise ValueError("no_progress_window must be positive")
        self.preemption_limit = preemption_limit
        self.no_progress_window = no_progress_window
        #: Preemption count per transaction (victim of someone else's
        #: conflict), maintained incrementally from the metrics event log.
        self.preemption_counts: dict[str, int] = {}
        self._events_seen = 0
        self._best_pc: dict[str, int] = {}
        self._progress_at: dict[str, int] = {}
        self._current_immune: str | None = None

    # -- observation -------------------------------------------------------

    def _ingest_events(self, scheduler: "Scheduler", step: int) -> None:
        events = scheduler.metrics.rollback_events
        for event in events[self._events_seen:]:
            if event.victim == event.requester:
                continue
            count = self.preemption_counts.get(event.victim, 0) + 1
            self.preemption_counts[event.victim] = count
            if event.victim == self._current_immune:
                raise LivelockDetected(
                    f"{event.victim} was preempted by {event.requester} "
                    f"despite holding preemption immunity "
                    f"(count {count} > limit {self.preemption_limit}): the "
                    f"active victim policy ignores the Theorem 2 partial "
                    f"order",
                    diagnosis=diagnose(scheduler, step=step),
                )
        self._events_seen = len(events)

    def _track_progress(self, scheduler: "Scheduler", step: int) -> None:
        for txn_id in sorted(scheduler.transactions):
            txn = scheduler.transactions[txn_id]
            if txn.done:
                self._best_pc.pop(txn_id, None)
                self._progress_at.pop(txn_id, None)
                continue
            # Progress means the execution *frontier* moved: the pc
            # surpassed the furthest point this transaction ever reached.
            # A rollback resets the pc downwards and the subsequent
            # re-climb merely repeats lost work, so neither counts —
            # exactly the signature of Figure 2's livelock, where victims
            # oscillate below their frontier forever.
            best = self._best_pc.get(txn_id)
            if best is None or txn.pc > best:
                self._best_pc[txn_id] = txn.pc
                self._progress_at[txn_id] = step

    def _starving(self, scheduler: "Scheduler", step: int) -> list[str]:
        starving = []
        for txn_id in sorted(scheduler.transactions):
            txn = scheduler.transactions[txn_id]
            if txn.done:
                continue
            if self.preemption_counts.get(txn_id, 0) >= self.preemption_limit:
                starving.append(txn_id)
                continue
            since = self._progress_at.get(txn_id)
            if since is not None and step - since >= self.no_progress_window:
                starving.append(txn_id)
        return starving

    # -- enforcement -------------------------------------------------------

    def tick(self, scheduler: "Scheduler", step: int) -> None:
        """Observe, then (re)assign the single immunity slot.

        Immunity goes to the starving transaction with the minimum entry
        order — the eldest, per Theorem 2's time-invariant order — and is
        released when its holder terminates.
        """
        self._ingest_events(scheduler, step)
        self._track_progress(scheduler, step)
        if self._current_immune is not None:
            holder = scheduler.transactions.get(self._current_immune)
            if holder is None or holder.done:
                scheduler.preemption_immune.discard(self._current_immune)
                if scheduler.bus:
                    scheduler.bus.publish(
                        EventKind.IMMUNITY_RELEASE, self._current_immune
                    )
                self._current_immune = None
        starving = self._starving(scheduler, step)
        if not starving:
            return
        eldest = min(
            starving,
            key=lambda t: (scheduler.transactions[t].entry_order, t),
        )
        if self._current_immune is not None:
            holder = scheduler.transactions[self._current_immune]
            if (
                scheduler.transactions[eldest].entry_order,
                eldest,
            ) >= (holder.entry_order, self._current_immune):
                return
            # A strictly elder transaction started starving after the
            # current holder got the slot (e.g. the holder is a blocked
            # waiter downstream of the actual livelock).  Hand the slot
            # over: entry order is time-invariant, so every handoff moves
            # toward the eldest and the chain is finite.
            scheduler.preemption_immune.discard(self._current_immune)
            if scheduler.bus:
                scheduler.bus.publish(
                    EventKind.IMMUNITY_HANDOFF,
                    eldest,
                    previous=self._current_immune,
                )
        self._current_immune = eldest
        scheduler.preemption_immune.add(eldest)
        scheduler.metrics.bump("immunity_grants")
        if scheduler.bus:
            scheduler.bus.publish(
                EventKind.IMMUNITY_GRANT,
                eldest,
                preemptions=self.preemption_counts.get(eldest, 0),
                starving=starving,
            )

    @property
    def immune(self) -> str | None:
        """The transaction currently holding the immunity slot, if any."""
        return self._current_immune

    def verdict(self, scheduler: "Scheduler") -> dict[str, object]:
        """A summary of what the watchdog saw and did (CLI reporting)."""
        worst = max(self.preemption_counts.values(), default=0)
        return {
            "immunity_grants": scheduler.metrics.immunity_grants,
            "max_preemptions": worst,
            "preemption_limit": self.preemption_limit,
            "mutual_preemption_pairs": sorted(
                scheduler.metrics.mutual_preemption_pairs()
            ),
            "currently_immune": self._current_immune,
        }
