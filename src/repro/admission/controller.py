"""The admission controller: queue arrivals instead of over-admitting.

Arrivals are submitted to the controller rather than registered directly
with the scheduler; each tick the controller asks its policy for the
current capacity and admits queued programs FIFO while the number in
flight (registered but not yet committed or shed) is below it.  Everything
is counted in :class:`~repro.core.metrics.Metrics` — admissions, and the
peak queue depth — so a run's report can show what the gate did.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..observability.events import EventKind
from .policies import AdmissionPolicy, AdmissionSnapshot, make_admission_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheduler import Scheduler
    from ..core.transaction import TransactionProgram


class AdmissionController:
    """FIFO admission gate in front of :meth:`Scheduler.register`.

    Parameters
    ----------
    policy:
        An :class:`~repro.admission.policies.AdmissionPolicy` instance or
        registry name (``"fixed-mpl"``, ``"aimd"``).
    """

    def __init__(self, policy: AdmissionPolicy | str = "fixed-mpl") -> None:
        self.policy = (
            make_admission_policy(policy) if isinstance(policy, str) else policy
        )
        self._queue: deque["TransactionProgram"] = deque()
        #: txn_id -> step at which the transaction was admitted.
        self.admitted_at: dict[str, int] = {}
        #: Policy window-history entries already published to the bus.
        self._history_seen = 0

    def pending(self) -> int:
        """Programs queued but not yet admitted."""
        return len(self._queue)

    def submit(self, program: "TransactionProgram") -> None:
        """Queue *program* for admission at the next capacity check."""
        self._queue.append(program)

    def in_flight(self, scheduler: "Scheduler") -> int:
        """Admitted transactions that have not yet terminated."""
        return sum(
            1
            for txn_id, txn in scheduler.transactions.items()
            if txn_id in self.admitted_at and not txn.done
        )

    def snapshot(self, scheduler: "Scheduler", step: int) -> AdmissionSnapshot:
        metrics = scheduler.metrics
        return AdmissionSnapshot(
            step=step,
            in_flight=self.in_flight(scheduler),
            queued=len(self._queue),
            commits=metrics.commits,
            rollbacks=metrics.rollbacks,
            shed=metrics.shed,
        )

    def tick(self, scheduler: "Scheduler", step: int) -> list[str]:
        """Admit queued programs up to the policy's current capacity.

        Returns the ids admitted this tick (the guard hangs deadlines off
        them).  Peak queue depth is observed *before* draining so a burst
        that is absorbed within one tick still shows up in metrics.
        """
        scheduler.metrics.observe_admission_queue(len(self._queue))
        admitted: list[str] = []
        while self._queue:
            snapshot = self.snapshot(scheduler, step)
            if snapshot.in_flight >= self.policy.capacity(snapshot):
                break
            program = self._queue.popleft()
            scheduler.register(program)
            self.admitted_at[program.txn_id] = step
            scheduler.metrics.bump("admitted")
            if scheduler.bus:
                scheduler.bus.publish(
                    EventKind.ADMISSION_ADMIT,
                    program.txn_id,
                    queued_behind=len(self._queue),
                )
            admitted.append(program.txn_id)
        history = getattr(self.policy, "history", None)
        if scheduler.bus and history is not None:
            for at, window in history[self._history_seen:]:
                scheduler.bus.publish(
                    EventKind.ADMISSION_WINDOW, window=window, at=at
                )
            self._history_seen = len(history)
        return admitted
