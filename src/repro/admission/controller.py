"""The admission controller: queue arrivals instead of over-admitting.

Arrivals are submitted to the controller rather than registered directly
with the scheduler; each tick the controller asks its policy for the
current capacity and admits queued programs while the number in flight
(registered but not yet committed or shed) is below it.  Admission is
FIFO unless the policy exposes a ``priority`` hook (the ``predictive``
policy does): then the lowest-risk queued program is admitted first,
with arrival order as the deterministic tiebreak, and every admission
that overtakes earlier arrivals publishes an ``ADMISSION_REORDER``
event.  Everything is counted in :class:`~repro.core.metrics.Metrics` —
admissions, and the peak queue depth — so a run's report can show what
the gate did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..observability.events import EventKind
from .policies import AdmissionPolicy, AdmissionSnapshot, make_admission_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.scheduler import Scheduler
    from ..core.transaction import TransactionProgram


class AdmissionController:
    """Admission gate in front of :meth:`Scheduler.register`.

    Parameters
    ----------
    policy:
        An :class:`~repro.admission.policies.AdmissionPolicy` instance or
        registry name (``"fixed-mpl"``, ``"aimd"``, ``"predictive"``).
    """

    def __init__(self, policy: AdmissionPolicy | str = "fixed-mpl") -> None:
        self.policy = (
            make_admission_policy(policy) if isinstance(policy, str) else policy
        )
        #: (arrival index, program), in arrival order.
        self._queue: list[tuple[int, "TransactionProgram"]] = []
        self._arrivals = 0
        #: txn_id -> step at which the transaction was admitted.
        self.admitted_at: dict[str, int] = {}
        #: Policy window-history entries already published to the bus.
        self._history_seen = 0
        #: Whether the policy's static risk anchor has been announced.
        self._risk_published = False
        #: Admissions that overtook at least one earlier arrival.
        self.reorders = 0

    def pending(self) -> int:
        """Programs queued but not yet admitted."""
        return len(self._queue)

    def submit(self, program: "TransactionProgram") -> None:
        """Queue *program* for admission at the next capacity check."""
        self._queue.append((self._arrivals, program))
        self._arrivals += 1

    def in_flight(self, scheduler: "Scheduler") -> int:
        """Admitted transactions that have not yet terminated."""
        return sum(
            1
            for txn_id, txn in scheduler.transactions.items()
            if txn_id in self.admitted_at and not txn.done
        )

    def snapshot(self, scheduler: "Scheduler", step: int) -> AdmissionSnapshot:
        metrics = scheduler.metrics
        return AdmissionSnapshot(
            step=step,
            in_flight=self.in_flight(scheduler),
            queued=len(self._queue),
            commits=metrics.commits,
            rollbacks=metrics.rollbacks,
            shed=metrics.shed,
        )

    def _publish_risk_anchor(self, scheduler: "Scheduler") -> None:
        """Announce the predictive policy's static anchor, once."""
        if self._risk_published or not scheduler.bus:
            return
        self._risk_published = True
        report = getattr(self.policy, "report", None)
        recommended = getattr(self.policy, "recommended", None)
        if report is None or recommended is None:
            return
        scheduler.bus.publish(
            EventKind.PREDICT_RISK,
            mean_pair_risk=round(report.mean_pair_risk, 6),
            recommended_mpl=recommended,
            classes=len(report.classes),
            templates=report.total_templates,
        )

    def _pop_next(self) -> tuple[int, "TransactionProgram", float, int]:
        """The next program to admit: (arrival, program, risk, skipped).

        FIFO without a policy ``priority`` hook; otherwise the queued
        program with the lowest ``(risk, arrival)`` pair — arrival order
        breaks ties, so equal-risk workloads degrade to exact FIFO.
        ``skipped`` counts the earlier arrivals it overtook.
        """
        priority = getattr(self.policy, "priority", None)
        if priority is None:
            arrival, program = self._queue.pop(0)
            return arrival, program, 0.0, 0
        best = min(
            range(len(self._queue)),
            key=lambda i: (priority(self._queue[i][1]), self._queue[i][0]),
        )
        arrival, program = self._queue.pop(best)
        return arrival, program, priority(program), best

    def tick(self, scheduler: "Scheduler", step: int) -> list[str]:
        """Admit queued programs up to the policy's current capacity.

        Returns the ids admitted this tick (the guard hangs deadlines off
        them).  Peak queue depth is observed *before* draining so a burst
        that is absorbed within one tick still shows up in metrics.
        """
        scheduler.metrics.observe_admission_queue(len(self._queue))
        self._publish_risk_anchor(scheduler)
        admitted: list[str] = []
        while self._queue:
            snapshot = self.snapshot(scheduler, step)
            if snapshot.in_flight >= self.policy.capacity(snapshot):
                break
            _arrival, program, risk, skipped = self._pop_next()
            scheduler.register(program)
            self.admitted_at[program.txn_id] = step
            scheduler.metrics.bump("admitted")
            if skipped:
                self.reorders += 1
            if scheduler.bus:
                if skipped:
                    scheduler.bus.publish(
                        EventKind.ADMISSION_REORDER,
                        program.txn_id,
                        skipped=skipped,
                        risk=round(risk, 6),
                    )
                scheduler.bus.publish(
                    EventKind.ADMISSION_ADMIT,
                    program.txn_id,
                    queued_behind=len(self._queue),
                )
            admitted.append(program.txn_id)
        history = getattr(self.policy, "history", None)
        if scheduler.bus and history is not None:
            for at, window in history[self._history_seen:]:
                scheduler.bus.publish(
                    EventKind.ADMISSION_WINDOW, window=window, at=at
                )
            self._history_seen = len(history)
        return admitted
