"""Pluggable admission policies: how many transactions may run at once.

The multiprogramming level (MPL) is the lever the probabilistic
deadlock-prevention literature identifies (PAPERS.md: Oliveira & Barbosa):
deadlock probability grows superlinearly in the number of concurrent
transactions, so under contention it is cheaper to queue arrivals than to
admit them into a rollback storm.  Two policies ship:

``fixed-mpl``
    A constant cap — the classic static MPL knob.
``aimd``
    Additive-increase / multiplicative-decrease: the admitted window
    shrinks (halves) whenever the observed rollback rate over the last
    adaptation window exceeds a threshold and creeps up (by one, with a
    seeded probabilistic extra probe) while the system is healthy.  The
    same seed always yields the same window trajectory for the same
    observation sequence.
``predictive``
    Seeds its window from the *static* risk analysis of the workload
    (:mod:`repro.staticcheck.workload`): the recommended MPL is the
    largest window whose expected number of deadlocking pairs stays
    within a budget, given the workload's measured lock-order inversion
    structure.  At runtime the window adapts AIMD-style around that
    anchor (never above twice the recommendation), and the policy
    exposes a :meth:`~PredictivePolicy.priority` hook the controller
    uses to admit low-risk templates first under backlog.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.transaction import TransactionProgram
    from ..staticcheck.workload import RiskReport


@dataclass(frozen=True)
class AdmissionSnapshot:
    """What a policy may observe when asked for the current capacity."""

    step: int
    in_flight: int
    queued: int
    commits: int
    rollbacks: int
    shed: int


class AdmissionPolicy(abc.ABC):
    """Strategy interface deciding the admitted-transaction window."""

    name: str = "abstract"

    @abc.abstractmethod
    def capacity(self, snapshot: AdmissionSnapshot) -> int:
        """The number of transactions allowed in flight right now."""


class FixedMplPolicy(AdmissionPolicy):
    """A constant multiprogramming-level cap."""

    name = "fixed-mpl"

    def __init__(self, mpl: int = 8) -> None:
        if mpl < 1:
            raise ValueError("mpl must be positive")
        self.mpl = mpl

    def capacity(self, snapshot: AdmissionSnapshot) -> int:
        return self.mpl


class AimdPolicy(AdmissionPolicy):
    """AIMD window adaptation driven by the observed rollback rate.

    Every ``window_steps`` engine steps the policy compares the rollbacks
    and commits accumulated since its last adaptation.  A rollback rate
    ``rollbacks / (rollbacks + commits)`` above ``rollback_threshold``
    halves the window (multiplicative decrease, floored at
    ``min_window``); otherwise the window grows by one, plus one extra
    probe slot with probability ``probe_boost`` drawn from a private
    ``random.Random(seed)`` (additive increase, capped at
    ``max_window``).  Deterministic: same seed and same observation
    sequence, same trajectory.
    """

    name = "aimd"

    def __init__(
        self,
        initial: int = 8,
        min_window: int = 1,
        max_window: int = 64,
        window_steps: int = 50,
        rollback_threshold: float = 0.5,
        probe_boost: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 1 <= min_window <= initial <= max_window:
            raise ValueError(
                "windows must satisfy 1 <= min_window <= initial <= max_window"
            )
        if window_steps < 1:
            raise ValueError("window_steps must be positive")
        if not 0.0 <= rollback_threshold <= 1.0:
            raise ValueError("rollback_threshold must be in [0, 1]")
        if not 0.0 <= probe_boost <= 1.0:
            raise ValueError("probe_boost must be in [0, 1]")
        self.min_window = min_window
        self.max_window = max_window
        self.window_steps = window_steps
        self.rollback_threshold = rollback_threshold
        self.probe_boost = probe_boost
        self._rng = random.Random(seed)
        self._window = initial
        self._adapted_at = 0
        self._rollbacks_then = 0
        self._commits_then = 0
        #: (step, window) after every adaptation, for reporting.
        self.history: list[tuple[int, int]] = []

    @property
    def window(self) -> int:
        """The current admitted-transaction window."""
        return self._window

    def capacity(self, snapshot: AdmissionSnapshot) -> int:
        if snapshot.step - self._adapted_at >= self.window_steps:
            self._adapt(snapshot)
        return self._window

    def _adapt(self, snapshot: AdmissionSnapshot) -> None:
        d_rollbacks = snapshot.rollbacks - self._rollbacks_then
        d_commits = snapshot.commits - self._commits_then
        observed = d_rollbacks + d_commits
        rate = d_rollbacks / observed if observed else 0.0
        if rate > self.rollback_threshold:
            self._window = max(self.min_window, self._window // 2)
        else:
            growth = 1 + (1 if self._rng.random() < self.probe_boost else 0)
            self._window = min(self.max_window, self._window + growth)
        self._adapted_at = snapshot.step
        self._rollbacks_then = snapshot.rollbacks
        self._commits_then = snapshot.commits
        self.history.append((snapshot.step, self._window))


class PredictivePolicy(AdmissionPolicy):
    """Risk-anchored admission (probabilistic deadlock prevention).

    The static workload analyzer scores every transaction template's
    lock-order inversion structure and recommends the largest MPL whose
    expected deadlocking pairs fit a budget; this policy starts there
    and adapts deterministically around that anchor: a rollback rate
    above ``rollback_threshold`` over the last ``window_steps`` halves
    the window (floored at ``min_window``); a healthy window grows by
    one, capped at twice the recommendation (contention risk is
    quadratic in the window, so drifting far above the anchor defeats
    the prediction).  No randomness: the same report and observation
    sequence always yield the same trajectory.

    :meth:`priority` ranks programs by their template's risk score so
    the controller can admit low-risk work first while a backlog holds
    high-risk templates back (throttle-by-reordering).
    """

    name = "predictive"

    def __init__(
        self,
        report: "RiskReport | None" = None,
        budget: float = 0.5,
        initial: int = 8,
        min_window: int = 1,
        max_window: int = 64,
        window_steps: int = 40,
        rollback_threshold: float = 0.5,
    ) -> None:
        if not 1 <= min_window <= max_window:
            raise ValueError("1 <= min_window <= max_window required")
        if window_steps < 1:
            raise ValueError("window_steps must be positive")
        if not 0.0 <= rollback_threshold <= 1.0:
            raise ValueError("rollback_threshold must be in [0, 1]")
        self.report = report
        anchor = (
            report.recommended_mpl(budget) if report is not None else initial
        )
        self.recommended = max(min_window, min(max_window, anchor))
        self.min_window = min_window
        self.max_window = min(max_window, 2 * self.recommended)
        self.window_steps = window_steps
        self.rollback_threshold = rollback_threshold
        self._window = self.recommended
        self._adapted_at = 0
        self._rollbacks_then = 0
        self._commits_then = 0
        self._risk_cache: dict[str, float] = {}
        #: (step, window) after every adaptation, for reporting.
        self.history: list[tuple[int, int]] = []

    @property
    def window(self) -> int:
        """The current admitted-transaction window."""
        return self._window

    def priority(self, program: "TransactionProgram") -> float:
        """Risk score of *program*'s template (lower admits first)."""
        cached = self._risk_cache.get(program.txn_id)
        if cached is not None:
            return cached
        if self.report is None:
            risk = 0.0
        else:
            from ..staticcheck.workload import TransactionTemplate

            risk = self.report.risk_of(
                TransactionTemplate.from_program(program)
            )
        self._risk_cache[program.txn_id] = risk
        return risk

    def capacity(self, snapshot: AdmissionSnapshot) -> int:
        if snapshot.step - self._adapted_at >= self.window_steps:
            self._adapt(snapshot)
        return self._window

    def _adapt(self, snapshot: AdmissionSnapshot) -> None:
        d_rollbacks = snapshot.rollbacks - self._rollbacks_then
        d_commits = snapshot.commits - self._commits_then
        observed = d_rollbacks + d_commits
        rate = d_rollbacks / observed if observed else 0.0
        if rate > self.rollback_threshold:
            self._window = max(self.min_window, self._window // 2)
        else:
            self._window = min(self.max_window, self._window + 1)
        self._adapted_at = snapshot.step
        self._rollbacks_then = snapshot.rollbacks
        self._commits_then = snapshot.commits
        self.history.append((snapshot.step, self._window))


#: Registry of selectable admission policies, in documentation order.
_ADMISSION_POLICY_REGISTRY: dict[str, Callable[..., AdmissionPolicy]] = {
    "fixed-mpl": FixedMplPolicy,
    "aimd": AimdPolicy,
    "predictive": PredictivePolicy,
}


def available_admission_policies() -> tuple[str, ...]:
    """Every selectable admission-policy name, in registry order."""
    return tuple(_ADMISSION_POLICY_REGISTRY)


def make_admission_policy(name: str, **kwargs: object) -> AdmissionPolicy:
    """Factory for admission policies by :attr:`AdmissionPolicy.name`."""
    if name not in _ADMISSION_POLICY_REGISTRY:
        raise ValueError(
            f"unknown admission policy {name!r}; choose from "
            f"{sorted(_ADMISSION_POLICY_REGISTRY)}"
        )
    return _ADMISSION_POLICY_REGISTRY[name](**kwargs)
