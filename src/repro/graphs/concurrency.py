"""Concurrency ("waits-for") graphs — §3 of the paper.

The paper defines, for a set ``T`` of concurrent transactions at time *t*,
the relation ``T_i -A-> T_j``: transaction ``T_j`` is waiting to lock entity
``A`` which is locked by ``T_i``.  :class:`ConcurrencyGraph` is the labeled
version ``G_L(T)``: vertices are transactions, arcs run from *holder* to
*waiter* and are labeled with the contested entity.

A deadlock is a subset of transactions forming a cycle.  With exclusive
locks only the graph is a forest whenever no deadlock exists (Theorem 1),
and a single wait response can close at most one cycle; with shared locks
the deadlock-free graph is a general acyclic digraph and one wait may close
many cycles, all of which pass through the requesting transaction (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from . import algorithms

if TYPE_CHECKING:  # import cycle: locking.table owns an IncrementalWaitsFor
    from ..locking.table import LockTable

TxnId = str
EntityName = str


@dataclass(frozen=True)
class WaitArc:
    """A labeled arc of the concurrency graph: *waiter* waits for *holder*
    to release *entity* (arc direction is holder -> waiter)."""

    holder: TxnId
    waiter: TxnId
    entity: EntityName


class ConcurrencyGraph:
    """Labeled waits-for graph ``G_L(T)``.

    Instances can be built manually (``add_wait``) for scenario work — the
    paper's figures are encoded this way in
    :mod:`repro.analysis.figures` — or snapshot from a live lock table with
    :meth:`from_lock_table`.
    """

    def __init__(self, transactions: Iterable[TxnId] = ()) -> None:
        self._vertices: set[TxnId] = set(transactions)
        self._arcs: set[WaitArc] = set()
        # Indexes kept in lockstep with _arcs so per-arc queries are O(1)
        # in the number of matching arcs rather than O(|arcs|).
        self._by_pair: dict[tuple[TxnId, TxnId], set[EntityName]] = {}
        self._by_holder: dict[TxnId, set[WaitArc]] = {}
        self._by_waiter: dict[TxnId, set[WaitArc]] = {}

    @classmethod
    def from_lock_table(
        cls,
        table: LockTable,
        transactions: Iterable[TxnId] = (),
        include_queue_edges: bool = True,
    ) -> "ConcurrencyGraph":
        """Snapshot the current waits-for relation of a lock table.

        With ``include_queue_edges=False`` only genuine lock conflicts
        appear (the paper's relation, on which Theorem 1's forest
        criterion holds); the default also includes FIFO queue-order
        blocking so that queue-induced deadlocks are detectable.
        """
        graph = cls(transactions)
        edges = (
            table.wait_edges() if include_queue_edges
            else table.conflict_edges()
        )
        for holder, waiter, entity in edges:
            graph.add_wait(holder, waiter, entity)
        return graph

    # -- construction ---------------------------------------------------------

    def add_transaction(self, txn: TxnId) -> None:
        self._vertices.add(txn)

    def add_wait(self, holder: TxnId, waiter: TxnId, entity: EntityName) -> None:
        """Record that *waiter* waits for *holder*'s lock on *entity*."""
        self._vertices.add(holder)
        self._vertices.add(waiter)
        arc = WaitArc(holder, waiter, entity)
        if arc in self._arcs:
            return
        self._arcs.add(arc)
        self._by_pair.setdefault((holder, waiter), set()).add(entity)
        self._by_holder.setdefault(holder, set()).add(arc)
        self._by_waiter.setdefault(waiter, set()).add(arc)

    def remove_wait(self, holder: TxnId, waiter: TxnId, entity: EntityName) -> None:
        arc = WaitArc(holder, waiter, entity)
        if arc not in self._arcs:
            return
        self._arcs.discard(arc)
        self._by_pair.get((holder, waiter), set()).discard(entity)
        self._by_holder.get(holder, set()).discard(arc)
        self._by_waiter.get(waiter, set()).discard(arc)

    def remove_transaction(self, txn: TxnId) -> None:
        """Delete a vertex and all incident arcs (transaction finished or
        totally removed)."""
        self._vertices.discard(txn)
        incident = self._by_holder.get(txn, set()) | self._by_waiter.get(
            txn, set()
        )
        for arc in incident:
            self.remove_wait(arc.holder, arc.waiter, arc.entity)
        self._by_holder.pop(txn, None)
        self._by_waiter.pop(txn, None)

    # -- views ------------------------------------------------------------------

    @property
    def transactions(self) -> set[TxnId]:
        return set(self._vertices)

    @property
    def arcs(self) -> set[WaitArc]:
        return set(self._arcs)

    def waits_of(self, waiter: TxnId) -> set[WaitArc]:
        """Arcs on which *waiter* is the waiting transaction."""
        return set(self._by_waiter.get(waiter, set()))

    def holds_waited_on(self, holder: TxnId) -> set[WaitArc]:
        """Arcs on which *holder* is the holding transaction."""
        return set(self._by_holder.get(holder, set()))

    def entity_between(self, holder: TxnId, waiter: TxnId) -> set[EntityName]:
        """Entities over which *waiter* waits for *holder*."""
        return set(self._by_pair.get((holder, waiter), set()))

    def adjacency(self) -> dict[TxnId, set[TxnId]]:
        """Successor map in the holder -> waiter orientation."""
        adj: dict[TxnId, set[TxnId]] = {txn: set() for txn in self._vertices}
        for arc in self._arcs:
            adj[arc.holder].add(arc.waiter)
        return adj

    def __iter__(self) -> Iterator[WaitArc]:
        return iter(self._arcs)

    def __len__(self) -> int:
        return len(self._arcs)

    # -- structure (Theorem 1 and friends) ----------------------------------------

    def is_forest(self) -> bool:
        """Theorem 1's criterion: deadlock-free exclusive-lock graphs are
        forests (in-degree <= 1 in this orientation, and acyclic)."""
        return algorithms.is_forest(self.adjacency())

    def has_deadlock(self) -> bool:
        """True iff some subset of transactions forms a directed cycle."""
        return algorithms.has_cycle(self.adjacency())

    def descendants(self, txn: TxnId) -> set[TxnId]:
        """Transactions transitively waiting on *txn* (paper's descendant
        test: a wait response deadlocks iff the requested entity is locked
        by a descendant of the requester)."""
        return algorithms.descendants(self.adjacency(), txn)

    def would_deadlock(self, requester: TxnId, holders: Iterable[TxnId]) -> bool:
        """Would blocking *requester* behind *holders* close a cycle?

        This is the paper's detection rule evaluated *before* the wait edge
        is inserted: the new arcs run holder -> requester, so a cycle forms
        iff some holder is already a descendant of the requester.
        """
        reachable = self.descendants(requester)
        return any(h == requester or h in reachable for h in holders)

    def cycle_through(self, txn: TxnId) -> list[TxnId] | None:
        """One deadlock cycle through *txn*, or ``None``."""
        return algorithms.find_cycle_through(self.adjacency(), txn)

    def find_any_cycle(self) -> list[TxnId] | None:
        """Some deadlock cycle anywhere in the graph, or ``None``.

        Single linear DFS; used by sweep-style detection and by the
        scheduler's residual pass after a resolution whose cycle
        enumeration hit its cap.
        """
        return algorithms.find_cycle(self.adjacency())

    def cycles_through(self, txn: TxnId, limit: int = 10_000) -> list[list[TxnId]]:
        """All simple deadlock cycles through *txn* (shared-lock systems can
        create several with a single wait response, Figure 3)."""
        return algorithms.simple_cycles_through(self.adjacency(), txn, limit)

    def deadlocked_transactions(self, requester: TxnId) -> set[TxnId]:
        """Union of all transactions on cycles through *requester*."""
        involved: set[TxnId] = set()
        for cycle in self.cycles_through(requester):
            involved.update(cycle)
        return involved

    def cycle_arcs(self, cycle: list[TxnId]) -> list[WaitArc]:
        """The labeled arcs realising *cycle* (one arc per hop; if several
        entities label a hop, the lexicographically first is returned)."""
        arcs: list[WaitArc] = []
        for i, holder in enumerate(cycle):
            waiter = cycle[(i + 1) % len(cycle)]
            entities = sorted(self.entity_between(holder, waiter))
            if not entities:
                raise ValueError(f"no arc {holder} -> {waiter} in graph")
            arcs.append(WaitArc(holder, waiter, entities[0]))
        return arcs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arcs = ", ".join(
            f"{a.holder}-[{a.entity}]->{a.waiter}" for a in sorted(
                self._arcs, key=lambda a: (a.holder, a.waiter, a.entity)
            )
        )
        return f"ConcurrencyGraph({arcs})"
