"""Graph algorithms used by the deadlock machinery.

All algorithms are implemented from first principles on plain adjacency
dictionaries (``dict[node, set[node]]`` for digraphs, ``dict[node,
set[node]]`` symmetric for undirected graphs) so the core library carries no
third-party dependencies.  The test suite cross-checks several of them
against ``networkx``.

Contents
--------
* :func:`find_cycle_through` — one directed cycle through a given vertex.
* :func:`simple_cycles_through` — all simple directed cycles through a given
  vertex (bounded enumeration; every deadlock created by a single wait
  response passes through the requesting transaction, §3.2).
* :func:`is_forest` — Theorem 1's structural test for exclusive-lock graphs.
* :func:`descendants` — reachability (the paper's descendant test for
  single-cycle deadlock detection).
* :func:`articulation_points` — Hopcroft–Tarjan, iterative, for
  state-dependency graphs (§4).
* :func:`min_cost_vertex_cut` / :func:`greedy_vertex_cut` — exact and
  heuristic solvers for the NP-complete minimum-cost "break all cycles"
  problem of §3.2.
"""

from __future__ import annotations

import itertools
from typing import Callable, Hashable, Iterable, Mapping, Sequence

Node = Hashable
Digraph = Mapping[Node, set]
Cost = float


def _successors(graph: Digraph, node: Node) -> set:
    return graph.get(node, set())


def nodes_of(graph: Digraph) -> set:
    """All nodes appearing in *graph* as keys or successors."""
    found = set(graph.keys())
    for targets in graph.values():
        found.update(targets)
    return found


def find_cycle_through(graph: Digraph, start: Node) -> list[Node] | None:
    """Return one directed cycle through *start*, or ``None``.

    The cycle is returned as a node list ``[start, n1, ..., nk]`` such that
    consecutive nodes are connected and the last node links back to *start*.
    Uses an iterative DFS from *start* looking for a path back to it.
    """
    stack: list[tuple[Node, list[Node]]] = [(start, [start])]
    seen: set = set()
    while stack:
        node, path = stack.pop()
        for succ in _successors(graph, node):
            if succ == start:
                return path
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, path + [succ]))
    return None


def simple_cycles_through(
    graph: Digraph, start: Node, limit: int = 10_000,
    visit_budget: int = 200_000,
) -> list[list[Node]]:
    """Enumerate simple directed cycles through *start*.

    Each cycle is a node list beginning at *start* (the closing arc back to
    *start* is implicit).  Enumeration is a DFS over simple paths from
    *start*, restricted to vertices that can reach *start* at all (reverse
    reachability pruning) — without it the DFS wastes exponential effort
    on paths that can never close.  Two caps bound adversarial graphs:
    *limit* on the number of cycles returned and *visit_budget* on DFS
    node expansions; both are far above what real deadlocks produce, and
    callers treat the output as a possibly-partial set (the scheduler's
    residual pass catches anything beyond the caps).
    """
    # Vertices from which `start` is reachable (reverse BFS).
    predecessors: dict[Node, set] = {}
    for node, targets in graph.items():
        for succ in targets:
            predecessors.setdefault(succ, set()).add(node)
    can_reach_start: set = set()
    frontier = list(predecessors.get(start, ()))
    while frontier:
        node = frontier.pop()
        if node in can_reach_start:
            continue
        can_reach_start.add(node)
        frontier.extend(predecessors.get(node, ()))
    if start not in can_reach_start:
        return []

    cycles: list[list[Node]] = []
    path: list[Node] = [start]
    on_path: set = {start}
    visits = 0

    def dfs(node: Node) -> bool:
        nonlocal visits
        visits += 1
        if visits > visit_budget:
            return False
        for succ in sorted(_successors(graph, node), key=repr):
            if succ == start:
                cycles.append(list(path))
                if len(cycles) >= limit:
                    return False
            elif succ not in on_path and succ in can_reach_start:
                path.append(succ)
                on_path.add(succ)
                if not dfs(succ):
                    return False
                on_path.discard(succ)
                path.pop()
        return True

    dfs(start)
    return cycles


def find_cycle(graph: Digraph) -> list[Node] | None:
    """Some directed cycle in the digraph, or ``None`` (single DFS pass).

    Linear in vertices+edges; returns the cycle as a node list in edge
    order.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Node, int] = {}
    for root in sorted(nodes_of(graph), key=repr):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: list[tuple[Node, Iterable[Node]]] = [
            (root, iter(sorted(_successors(graph, root), key=repr)))
        ]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                c = color.get(succ, WHITE)
                if c == GRAY:
                    # succ is on the current DFS stack: slice the cycle
                    # out of the gray path.
                    path = [entry[0] for entry in stack]
                    return path[path.index(succ):]
                if c == WHITE:
                    color[succ] = GRAY
                    stack.append(
                        (succ, iter(sorted(_successors(graph, succ), key=repr)))
                    )
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def has_cycle(graph: Digraph) -> bool:
    """True iff the digraph contains any directed cycle."""
    return find_cycle(graph) is not None


def is_forest(graph: Digraph) -> bool:
    """Structural test behind Theorem 1.

    With exclusive locks only, every waiting transaction waits for exactly
    one holder, so in the holder->waiter orientation every vertex has
    in-degree at most one; the graph is then a forest (of out-trees) iff it
    is acyclic.  This predicate checks both properties.
    """
    indegree: dict[Node, int] = {}
    for node, targets in graph.items():
        indegree.setdefault(node, 0)
        for succ in targets:
            indegree[succ] = indegree.get(succ, 0) + 1
    if any(d > 1 for d in indegree.values()):
        return False
    return not has_cycle(graph)


def descendants(graph: Digraph, start: Node) -> set:
    """All nodes reachable from *start* by directed paths (excluding start
    unless it lies on a cycle through itself)."""
    reached: set = set()
    frontier = list(_successors(graph, start))
    while frontier:
        node = frontier.pop()
        if node in reached:
            continue
        reached.add(node)
        frontier.extend(_successors(graph, node))
    return reached


# ---------------------------------------------------------------------------
# Undirected: articulation points (for state-dependency graphs, §4)
# ---------------------------------------------------------------------------


def articulation_points(adjacency: Mapping[Node, set]) -> set:
    """Articulation points of an undirected graph (Hopcroft–Tarjan).

    *adjacency* must be symmetric (``b in adjacency[a]`` implies ``a in
    adjacency[b]``).  Implemented iteratively so pathological
    state-dependency chains cannot hit Python's recursion limit.
    """
    index: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Node | None] = {}
    points: set = set()
    counter = itertools.count()

    for root in adjacency:
        if root in index:
            continue
        parent[root] = None
        root_children = 0
        stack: list[tuple[Node, Iterable[Node]]] = [
            (root, iter(sorted(adjacency[root], key=repr)))
        ]
        index[root] = low[root] = next(counter)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nb in it:
                if nb not in index:
                    parent[nb] = node
                    if node == root:
                        root_children += 1
                    index[nb] = low[nb] = next(counter)
                    stack.append((nb, iter(sorted(adjacency[nb], key=repr))))
                    advanced = True
                    break
                if nb != parent[node]:
                    low[node] = min(low[node], index[nb])
            if not advanced:
                stack.pop()
                p = parent[node]
                if p is not None:
                    low[p] = min(low[p], low[node])
                    if p != root and low[node] >= index[p]:
                        points.add(p)
        if root_children > 1:
            points.add(root)
    return points


# ---------------------------------------------------------------------------
# Minimum-cost vertex cut of all cycles (§3.2, NP-complete)
# ---------------------------------------------------------------------------


def _cycles_hit(cycles: Sequence[Sequence[Node]], chosen: set) -> bool:
    return all(any(v in chosen for v in cycle) for cycle in cycles)


def min_cost_vertex_cut(
    cycles: Sequence[Sequence[Node]],
    cost: Callable[[Node], Cost],
    candidates: Iterable[Node] | None = None,
) -> set:
    """Exact minimum-cost set of vertices hitting every cycle.

    This is the weighted hitting-set formulation of the paper's
    deadlock-removal optimisation: find transactions whose rollback breaks
    all cycles at minimum summed rollback cost.  Exponential in the number
    of candidate vertices — intended for the small vertex sets real
    deadlocks produce; use :func:`greedy_vertex_cut` at scale.
    """
    if not cycles:
        return set()
    pool = sorted(
        set(candidates) if candidates is not None
        else {v for cycle in cycles for v in cycle},
        key=repr,
    )
    if len(pool) > 22:
        raise ValueError(
            f"exact cut over {len(pool)} candidates is intractable; "
            f"use greedy_vertex_cut"
        )
    best: set | None = None
    best_cost = float("inf")
    # A larger set of cheap vertices can beat a smaller expensive one, so all
    # subset sizes must be scanned; subsets whose cost already exceeds the
    # incumbent are pruned.
    for r in range(1, len(pool) + 1):
        for combo in itertools.combinations(pool, r):
            chosen = set(combo)
            total = sum(cost(v) for v in chosen)
            if total >= best_cost:
                continue
            if _cycles_hit(cycles, chosen):
                best, best_cost = chosen, total
    if best is None:
        raise ValueError("no vertex cut exists over the given candidates")
    return best


def greedy_vertex_cut(
    cycles: Sequence[Sequence[Node]],
    cost: Callable[[Node], Cost],
) -> set:
    """Greedy heuristic for the minimum-cost cycle-hitting set.

    Repeatedly picks the vertex minimising ``cost / cycles-covered`` among
    unhit cycles.  Runs in polynomial time and achieves the classic
    logarithmic approximation factor of greedy set cover.
    """
    remaining = [list(c) for c in cycles]
    chosen: set = set()
    while remaining:
        pool = {v for cycle in remaining for v in cycle}
        best_v = min(
            pool,
            key=lambda v: (
                cost(v) / sum(1 for c in remaining if v in c),
                repr(v),
            ),
        )
        chosen.add(best_v)
        remaining = [c for c in remaining if best_v not in c]
    return chosen
