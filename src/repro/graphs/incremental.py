"""Incrementally maintained waits-for graph.

:class:`~repro.graphs.concurrency.ConcurrencyGraph.from_lock_table`
rebuilds the whole waits-for relation from scratch, so detection cost
scales with total lock-table size.  The paper's premise is the opposite:
the system "maintains the concurrency graph continuously", which is what
makes removal-at-every-conflict affordable.  :class:`IncrementalWaitsFor`
is that continuously maintained structure.

Design
------
The lock table owns one instance and calls :meth:`refresh_entity` after
every mutation of an entity's lock state (grant, block, release wake-up,
queue cancellation).  All waits-for edges of an entity are a pure function
of that entity's ``(holders, queue)`` pair — conflict edges from
incompatible holders plus FIFO queue-order edges between incompatible
queued requests — so the refresh recomputes only *that entity's* edge set
and diffs it against the previous one.  Maintenance cost therefore scales
with the contended entity, never with the table.

Transaction and entity ids are interned to dense integer indices
(:class:`Interner`), and the live adjacency is kept over those indices, so
the hot cycle check is a DFS over small-int sets with no string hashing.
Reachability answers (``None`` / existence) are order-independent, so the
fast integer DFS is exact; the rare *enumeration* paths (an actual
deadlock, the residual sweep) re-run over a name-keyed adjacency that is
byte-for-byte the input the full rebuild would have produced — same
cycles, same order, same victims.  Same seed, same outcome, either path.

The structure never invents state: :meth:`materialize` exports a plain
:class:`~repro.graphs.concurrency.ConcurrencyGraph`, and the
``graph-consistency`` oracle (:mod:`repro.verification.oracles`) asserts
arc-set equality with a from-scratch rebuild after every engine step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Protocol, Sequence

from . import algorithms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .concurrency import ConcurrencyGraph

TxnId = str
EntityName = str


class ModeLike(Protocol):
    """Anything with the lock-mode compatibility test (structural, so this
    module needs no runtime import from :mod:`repro.locking`)."""

    def compatible_with(self, other: Any) -> bool:
        """True when the two modes can be held concurrently."""
        ...  # pragma: no cover - protocol


class QueuedLike(Protocol):
    """A queued lock request: transaction id plus requested mode."""

    @property
    def txn(self) -> str: ...  # pragma: no cover - protocol

    @property
    def mode(self) -> ModeLike: ...  # pragma: no cover - protocol


class Interner:
    """Bidirectional string <-> dense-index map with slot recycling.

    Indices are assigned 0, 1, 2, ... in first-intern order (deterministic
    because every caller mutates the lock table in a deterministic order).
    :meth:`recycle` returns an index to a free list for reuse, so a
    long-lived process interning an unbounded stream of transaction ids
    keeps the index space bounded by the number of *live* names.  Index
    reuse is safe for every consumer here: existence queries over the
    integer adjacency are order-independent, and all enumeration runs over
    name-keyed structures.
    """

    __slots__ = ("_index_of", "_names", "_free")

    def __init__(self) -> None:
        self._index_of: dict[str, int] = {}
        self._names: list[str] = []
        self._free: list[int] = []

    def __len__(self) -> int:
        """Slots ever allocated (the high-water mark, not live names)."""
        return len(self._names)

    @property
    def live(self) -> int:
        """Names currently interned."""
        return len(self._index_of)

    def index(self, name: str) -> int:
        """Index for *name*, interning it on first sight (reusing a
        recycled slot when one is free)."""
        idx = self._index_of.get(name)
        if idx is None:
            if self._free:
                idx = self._free.pop()
                self._names[idx] = name
            else:
                idx = len(self._names)
                self._names.append(name)
            self._index_of[name] = idx
        return idx

    def get(self, name: str) -> int | None:
        """Index for *name* if currently interned, else ``None``."""
        return self._index_of.get(name)

    def name(self, index: int) -> str:
        """Inverse lookup."""
        return self._names[index]

    def recycle(self, name: str) -> bool:
        """Free *name*'s slot for reuse; True if it was interned.

        The caller is responsible for ensuring no live structure still
        references the index (:class:`IncrementalWaitsFor` checks its
        incident-arc counts before recycling).
        """
        idx = self._index_of.pop(name, None)
        if idx is None:
            return False
        self._names[idx] = ""
        self._free.append(idx)
        return True

    def items(self) -> list[tuple[str, int]]:
        """Live ``(name, index)`` pairs (compaction sweeps iterate this)."""
        return list(self._index_of.items())


class IncrementalWaitsFor:
    """Live waits-for graph, updated per contended entity.

    Invariant (checked by the differential tests and the
    ``graph-consistency`` oracle): the arc set always equals
    ``ConcurrencyGraph.from_lock_table(table)``'s arc set for the owning
    lock table.
    """

    def __init__(self) -> None:
        self._txns = Interner()
        self._entities = Interner()
        #: entity index -> its current (holder, waiter) pairs.
        self._entity_edges: dict[int, set[tuple[int, int]]] = {}
        #: (holder, waiter) -> entity indices labeling the arc.
        self._pair_labels: dict[tuple[int, int], set[int]] = {}
        #: holder -> waiters (interned); the DFS substrate.
        self._succ: dict[int, set[int]] = {}
        #: txn index -> number of live (holder, waiter) pairs it appears
        #: in; guards id recycling (a txn with incident pairs is pinned).
        self._incident: dict[int, int] = {}
        #: Maintenance/query counters for the perf trajectory
        #: (``BENCH_scale.json`` records them per run).
        self.counters: dict[str, int] = {
            "refreshes": 0,
            "edges_added": 0,
            "edges_removed": 0,
            "cycle_checks": 0,
            "enumerations": 0,
            "materializations": 0,
            "txn_ids_recycled": 0,
            "entity_ids_recycled": 0,
            "compactions": 0,
        }

    # -- maintenance (called by the lock table) ---------------------------

    def refresh_entity(
        self,
        entity: EntityName,
        holders: Mapping[str, ModeLike],
        queue: Sequence[QueuedLike],
    ) -> None:
        """Recompute *entity*'s edges from its live lock state and diff.

        Mirrors :meth:`repro.locking.table.LockTable.wait_edges` for one
        entity: an edge runs holder -> waiter for every incompatible
        holder, and earlier-waiter -> later-waiter for every incompatible
        pair of queued requests (FIFO order blocking).  No queue means no
        edges, so uncontended entities cost one dict probe.
        """
        eid = self._entities.index(entity)
        current = self._entity_edges.get(eid)
        if not queue and not current:
            return
        self.counters["refreshes"] += 1
        desired: set[tuple[int, int]] = set()
        if queue:
            intern = self._txns.index
            holder_pairs = [
                (intern(txn), mode) for txn, mode in holders.items()
            ]
            earlier: list[tuple[int, ModeLike]] = []
            for request in queue:
                waiter = intern(request.txn)
                mode = request.mode
                for holder, held in holder_pairs:
                    if not held.compatible_with(mode):
                        desired.add((holder, waiter))
                for ahead, ahead_mode in earlier:
                    if not ahead_mode.compatible_with(mode):
                        desired.add((ahead, waiter))
                earlier.append((waiter, mode))
        if current:
            for pair in current - desired:
                self._remove_edge(pair, eid)
            for pair in desired - current:
                self._add_edge(pair, eid)
        else:
            for pair in desired:
                self._add_edge(pair, eid)
        if desired:
            self._entity_edges[eid] = desired
        else:
            self._entity_edges.pop(eid, None)

    def _add_edge(self, pair: tuple[int, int], eid: int) -> None:
        labels = self._pair_labels.get(pair)
        if labels is None:
            labels = self._pair_labels[pair] = set()
            self._succ.setdefault(pair[0], set()).add(pair[1])
            incident = self._incident
            incident[pair[0]] = incident.get(pair[0], 0) + 1
            incident[pair[1]] = incident.get(pair[1], 0) + 1
        labels.add(eid)
        self.counters["edges_added"] += 1

    def _remove_edge(self, pair: tuple[int, int], eid: int) -> None:
        labels = self._pair_labels.get(pair)
        if labels is None:
            return
        labels.discard(eid)
        self.counters["edges_removed"] += 1
        if not labels:
            del self._pair_labels[pair]
            waiters = self._succ.get(pair[0])
            if waiters is not None:
                waiters.discard(pair[1])
                if not waiters:
                    del self._succ[pair[0]]
            incident = self._incident
            for endpoint in pair:
                count = incident.get(endpoint, 0) - 1
                if count <= 0:
                    incident.pop(endpoint, None)
                else:
                    incident[endpoint] = count

    # -- id recycling (bounded interners for service lifetimes) -----------

    def forget_txn(self, txn_id: TxnId) -> bool:
        """Recycle *txn_id*'s interned index if no live arc touches it.

        Called when a transaction terminates (commit / shed): its id will
        never be interned again, so the slot is returned for reuse and a
        long-lived process's transaction interner stays bounded by the
        number of *live* transactions.  A no-op (returning False) while
        the transaction still appears in any (holder, waiter) pair.
        """
        idx = self._txns.get(txn_id)
        if idx is None or self._incident.get(idx):
            return False
        self._txns.recycle(txn_id)
        self.counters["txn_ids_recycled"] += 1
        return True

    def forget_entity(self, entity: EntityName) -> bool:
        """Recycle *entity*'s interned index if it carries no arcs.

        Safe at any time — a later lock on the entity simply re-interns
        it (possibly at a different index; all arc bookkeeping is keyed by
        the live index).
        """
        eid = self._entities.get(entity)
        if eid is None or eid in self._entity_edges:
            return False
        self._entities.recycle(entity)
        self.counters["entity_ids_recycled"] += 1
        return True

    def compact(self) -> dict[str, int]:
        """Sweep both interners, recycling every id with no live arcs.

        The periodic compaction hook for long-lived processes (the lock
        service ticks it): transactions are also recycled eagerly at
        termination via :meth:`forget_txn`, but entities — and any
        transaction whose termination hook was bypassed — are reclaimed
        here.  Returns ``{"txns": n, "entities": m}`` recycled counts.
        """
        self.counters["compactions"] += 1
        txns = sum(
            1
            for name, idx in self._txns.items()
            if not self._incident.get(idx) and self.forget_txn(name)
        )
        entities = sum(
            1
            for name, eid in self._entities.items()
            if eid not in self._entity_edges and self.forget_entity(name)
        )
        return {"txns": txns, "entities": entities}

    @property
    def interned(self) -> dict[str, int]:
        """Live interner occupancy (bounded-memory assertions)."""
        return {
            "txns_live": self._txns.live,
            "txn_slots": len(self._txns),
            "entities_live": self._entities.live,
            "entity_slots": len(self._entities),
        }

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct labeled arcs."""
        return sum(len(labels) for labels in self._pair_labels.values())

    def arcs(self) -> set[tuple[TxnId, TxnId, EntityName]]:
        """All ``(holder, waiter, entity)`` triples, by name."""
        txn = self._txns.name
        ent = self._entities.name
        return {
            (txn(holder), txn(waiter), ent(eid))
            for (holder, waiter), labels in self._pair_labels.items()
            for eid in labels
        }

    def transactions(self) -> set[TxnId]:
        """Vertices induced by the current arcs."""
        txn = self._txns.name
        nodes: set[TxnId] = set()
        for holder, waiter in self._pair_labels:
            nodes.add(txn(holder))
            nodes.add(txn(waiter))
        return nodes

    def adjacency(self) -> dict[TxnId, set[TxnId]]:
        """Name-keyed successor map (holder -> waiters).

        Identical to the adjacency a full rebuild would produce, so the
        enumeration algorithms return cycles in the same deterministic
        order over either structure.
        """
        txn = self._txns.name
        adj: dict[TxnId, set[TxnId]] = {}
        for holder, waiters in self._succ.items():
            adj[txn(holder)] = {txn(w) for w in waiters}
        return adj

    # -- queries (the detection hot path) ---------------------------------

    def has_cycle_through(self, requester: TxnId) -> bool:
        """Order-independent reachability gate: does any cycle pass
        through *requester*?  Pure integer DFS over the live adjacency."""
        self.counters["cycle_checks"] += 1
        idx = self._txns.get(requester)
        if idx is None or not self._succ.get(idx):
            return False
        return algorithms.find_cycle_through(self._succ, idx) is not None

    def cycles_through(
        self, requester: TxnId, limit: int = 10_000
    ) -> list[list[TxnId]]:
        """Simple cycles through *requester*, in rebuild-identical order.

        The common no-deadlock case is answered by the integer fast path;
        only a confirmed cycle pays for the name-keyed enumeration.
        """
        if not self.has_cycle_through(requester):
            return []
        self.counters["enumerations"] += 1
        return algorithms.simple_cycles_through(
            self.adjacency(), requester, limit
        )

    def find_any_cycle(self) -> list[TxnId] | None:
        """Some cycle anywhere, or ``None`` (fast integer existence gate,
        name-keyed rerun for the deterministic witness)."""
        self.counters["cycle_checks"] += 1
        if algorithms.find_cycle(self._succ) is None:
            return None
        cycle = algorithms.find_cycle(self.adjacency())
        assert cycle is not None  # existence is order-independent
        return cycle

    def materialize(self) -> "ConcurrencyGraph":
        """Export a :class:`~repro.graphs.concurrency.ConcurrencyGraph`
        equal (as arc/vertex sets) to a from-scratch rebuild."""
        from .concurrency import ConcurrencyGraph

        self.counters["materializations"] += 1
        graph = ConcurrencyGraph()
        txn = self._txns.name
        ent = self._entities.name
        for (holder, waiter), labels in self._pair_labels.items():
            for eid in labels:
                graph.add_wait(txn(holder), txn(waiter), ent(eid))
        return graph

    def counters_snapshot(self) -> dict[str, int]:
        """Copy of the maintenance/query counters."""
        return dict(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arcs = ", ".join(
            f"{h}-[{e}]->{w}" for h, w, e in sorted(self.arcs())
        )
        return f"IncrementalWaitsFor({arcs})"


def iter_arcs_sorted(
    graph: IncrementalWaitsFor,
) -> Iterable[tuple[TxnId, TxnId, EntityName]]:
    """Deterministically ordered arc view (test/debug helper)."""
    return sorted(graph.arcs())
