"""Graph layer: concurrency (waits-for) graphs, the incrementally
maintained waits-for structure, state-dependency graphs, and the
underlying algorithms."""

from .concurrency import ConcurrencyGraph, WaitArc
from .incremental import IncrementalWaitsFor, Interner
from .state_dependency import StateDependencyGraph, WriteEdge

__all__ = [
    "ConcurrencyGraph",
    "IncrementalWaitsFor",
    "Interner",
    "StateDependencyGraph",
    "WaitArc",
    "WriteEdge",
]
