"""Graph layer: concurrency (waits-for) graphs, state-dependency graphs,
and the underlying algorithms."""

from .concurrency import ConcurrencyGraph, WaitArc
from .state_dependency import StateDependencyGraph, WriteEdge

__all__ = [
    "ConcurrencyGraph",
    "StateDependencyGraph",
    "WaitArc",
    "WriteEdge",
]
