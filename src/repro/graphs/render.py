"""Text renderings of the paper's two graph structures.

For debugging, examples, and documentation: concurrency graphs and
state-dependency graphs render to Graphviz DOT (for figures) and to a
compact ASCII form (for terminal output).  Rendering is read-only; no
third-party libraries are needed to *produce* the DOT text.
"""

from __future__ import annotations

from .concurrency import ConcurrencyGraph
from .state_dependency import StateDependencyGraph


def concurrency_to_dot(graph: ConcurrencyGraph, title: str = "G") -> str:
    """Graphviz DOT for a concurrency graph.

    Arcs run holder -> waiter and are labeled with the contested entity,
    matching the paper's Figure 1/3 style.
    """
    lines = [f"digraph {title} {{", "  rankdir=LR;"]
    for txn in sorted(graph.transactions):
        lines.append(f'  "{txn}";')
    for arc in sorted(
        graph.arcs, key=lambda a: (a.holder, a.waiter, a.entity)
    ):
        lines.append(
            f'  "{arc.holder}" -> "{arc.waiter}" [label="{arc.entity}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def concurrency_to_ascii(graph: ConcurrencyGraph) -> str:
    """One line per arc: ``holder -[entity]-> waiter``; isolated
    transactions are listed afterwards."""
    lines = []
    connected = set()
    for arc in sorted(
        graph.arcs, key=lambda a: (a.holder, a.waiter, a.entity)
    ):
        lines.append(f"{arc.holder} -[{arc.entity}]-> {arc.waiter}")
        connected.update((arc.holder, arc.waiter))
    isolated = sorted(graph.transactions - connected)
    if isolated:
        lines.append("isolated: " + ", ".join(isolated))
    return "\n".join(lines) if lines else "(empty)"


def sdg_to_dot(sdg: StateDependencyGraph, title: str = "Gp") -> str:
    """Graphviz DOT for a state-dependency graph.

    Chain edges are drawn solid; write edges dashed and labeled with the
    variable whose write created them (Figure 4 style).  Well-defined lock
    states are drawn as double circles.
    """
    lines = [f"graph {title} {{", "  rankdir=LR;"]
    for v in sdg.vertices():
        shape = "doublecircle" if sdg.well_defined(v) else "circle"
        lines.append(f'  "{v}" [shape={shape}];')
    for v in range(sdg.lock_count):
        lines.append(f'  "{v}" -- "{v + 1}";')
    for edge in sdg.edges:
        upper = min(edge.upper + 1, sdg.lock_count)
        if upper > edge.lower:
            lines.append(
                f'  "{edge.lower}" -- "{upper}" '
                f'[style=dashed, label="{edge.variable}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def sdg_to_ascii(sdg: StateDependencyGraph) -> str:
    """Compact ASCII: the lock-state chain with well-defined states marked
    ``[k]`` and undefined ones ``(k)``, followed by the kill intervals."""
    chain = " - ".join(
        f"[{q}]" if sdg.well_defined(q) else f"({q})"
        for q in sdg.vertices()
    )
    intervals = ", ".join(
        f"({lo},{hi}]" for lo, hi in sdg.undefined_intervals()
    )
    spans = f"; kills: {intervals}" if intervals else ""
    return chain + spans
