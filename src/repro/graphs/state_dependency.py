"""State-dependency graphs — §4 of the paper (single-copy rollback).

Under the single-copy strategy, only two values of a variable are ever
available: the *base* value (an entity's global value / a local variable's
initial value) and the *current* local copy.  The value a variable held at a
past lock state is therefore reproducible iff either

* no write to the variable happened **before** that lock state (the base
  value is still correct there), or
* no write to the variable happened **after** that lock state (the current
  copy is still correct there).

The paper captures this with the *state-dependency graph* ``G_p``: vertices
are lock indices ``0..p``, consecutive indices are joined by chain edges,
and each write adds an edge between the written variable's *index of
restorability* (the last lock state before its first write) and the lock
index of the write.  A lock state is *well-defined* (recreatable) iff no
write edge spans it; equivalently, iff its vertex is an articulation point
of ``G_p`` (Corollary 1).

Lock-index conventions used throughout the library
---------------------------------------------------
* Lock state ``k`` (``k >= 1``) is the state immediately before the ``k``-th
  lock request; lock state ``0`` is the initial state.
* The lock index of a write operation is the number of lock requests issued
  before it, so a write with lock index ``m`` executes *after* lock state
  ``m``; it destroys the pre-write value at every lock state in the open/
  closed interval ``(u, m]`` where ``u`` is the variable's index of
  restorability.  (The paper's figures attach the write edge to the vertex
  of the state the write follows; spanning is therefore ``u < q <= m`` in
  our indexing, which the docstring of :meth:`StateDependencyGraph.
  well_defined` restates.)
"""

from __future__ import annotations

from dataclasses import dataclass

from . import algorithms


@dataclass(frozen=True)
class WriteEdge:
    """An SDG edge produced by a write: spans lock states in ``(lower,
    upper]`` and renders them undefined.

    Attributes
    ----------
    lower:
        The written variable's index of restorability ``u``.
    upper:
        The lock index ``m`` of the write.
    variable:
        The written entity or local variable (for diagnostics).
    """

    lower: int
    upper: int
    variable: str

    def spans(self, lock_index: int) -> bool:
        """True iff the edge makes lock state *lock_index* undefined."""
        return self.lower < lock_index <= self.upper


@dataclass
class _VariableHistory:
    restorability_index: int | None = None
    last_write_index: int | None = None


class StateDependencyGraph:
    """Incrementally maintained state-dependency graph for one transaction.

    The scheduler notifies the graph of each lock request
    (:meth:`add_lock_state`) and each write (:meth:`record_write`); rollback
    truncates it (:meth:`truncate_to`).  Queries answer which lock states
    are currently *well-defined*, i.e. legal targets for single-copy
    rollback.
    """

    def __init__(self) -> None:
        self._lock_count = 0
        self._histories: dict[str, _VariableHistory] = {}
        self._edges: list[WriteEdge] = []

    # -- updates ----------------------------------------------------------

    def add_lock_state(self) -> int:
        """Record that a lock request is being issued; returns its lock
        index (the index of the lock state immediately preceding it)."""
        self._lock_count += 1
        return self._lock_count

    def record_write(self, variable: str) -> WriteEdge | None:
        """Record a write to *variable* at the current lock index.

        Returns the new :class:`WriteEdge` if the write destroys any state
        (i.e. the variable was written before at an earlier lock index), or
        the edge created by a first write, or ``None`` when the write only
        updates an interval already covered.
        """
        history = self._histories.setdefault(variable, _VariableHistory())
        lock_index = self._lock_count
        if history.restorability_index is None:
            history.restorability_index = lock_index
        history.last_write_index = lock_index
        if lock_index > history.restorability_index:
            edge = WriteEdge(history.restorability_index, lock_index, variable)
            self._edges.append(edge)
            return edge
        return None

    def truncate_to(self, lock_index: int) -> None:
        """Rewind the graph to lock state *lock_index* (after a rollback).

        Lock states ``>= lock_index`` are discarded; write records at lock
        indices ``>= lock_index`` are undone.
        """
        if not 0 <= lock_index <= self._lock_count:
            raise ValueError(
                f"lock index {lock_index} out of range 0..{self._lock_count}"
            )
        # After rolling back to lock state k, the transaction has issued
        # k - 1 lock requests (requests k..n were undone).
        self._lock_count = max(lock_index - 1, 0)
        self._edges = [e for e in self._edges if e.upper < lock_index]
        survivors: dict[str, _VariableHistory] = {}
        for variable, history in self._histories.items():
            if history.restorability_index is None:
                continue
            if history.restorability_index >= lock_index:
                continue  # first write undone: variable is pristine again
            writes_left = [
                e.upper for e in self._edges if e.variable == variable
            ]
            last = max(writes_left, default=history.restorability_index)
            survivors[variable] = _VariableHistory(
                restorability_index=history.restorability_index,
                last_write_index=last,
            )
        self._histories = survivors

    # -- queries -----------------------------------------------------------

    @property
    def lock_count(self) -> int:
        """Number of lock requests issued so far (= index of the latest
        lock state)."""
        return self._lock_count

    @property
    def edges(self) -> list[WriteEdge]:
        """All write edges recorded so far."""
        return list(self._edges)

    def restorability_index(self, variable: str) -> int | None:
        """The variable's index of restorability, or ``None`` if unwritten."""
        history = self._histories.get(variable)
        return history.restorability_index if history else None

    def undefined_intervals(self) -> list[tuple[int, int]]:
        """Per-variable intervals ``(u, m]`` of undefined lock states."""
        intervals = []
        for history in self._histories.values():
            if (
                history.restorability_index is not None
                and history.last_write_index is not None
                and history.last_write_index > history.restorability_index
            ):
                intervals.append(
                    (history.restorability_index, history.last_write_index)
                )
        return sorted(intervals)

    def well_defined(self, lock_index: int) -> bool:
        """Is lock state *lock_index* currently well-defined?

        A state is well-defined iff no variable has both a write before it
        (``u < lock_index``) and a write at-or-after it
        (``last_write >= lock_index``): the spanning criterion of Theorem 4
        evaluated on the per-variable intervals ``(u, last_write]``.
        Lock state 0 (total rollback) is always well-defined.
        """
        if not 0 <= lock_index <= self._lock_count:
            raise ValueError(
                f"lock index {lock_index} out of range 0..{self._lock_count}"
            )
        return not any(
            lower < lock_index <= upper
            for lower, upper in self.undefined_intervals()
        )

    def well_defined_states(self) -> list[int]:
        """All currently well-defined lock indices, ascending."""
        return [
            q for q in range(self._lock_count + 1) if self.well_defined(q)
        ]

    def latest_well_defined_at_or_below(self, lock_index: int) -> int:
        """Largest well-defined lock index ``<= lock_index``.

        This is the rollback target the single-copy strategy actually uses
        when the ideal target (the lock state of the contested entity) is
        itself undefined: "we must find the well-defined lock state of
        largest index less than that of the lock state for E" (§4).
        Always succeeds because lock state 0 is well-defined.
        """
        for q in range(min(lock_index, self._lock_count), -1, -1):
            if self.well_defined(q):
                return q
        raise AssertionError("lock state 0 must be well-defined")

    # -- the graph itself (figures, tests) ---------------------------------------

    def vertices(self) -> list[int]:
        """Vertices of ``G_p``: lock indices ``0..p``."""
        return list(range(self._lock_count + 1))

    def adjacency(self) -> dict[int, set[int]]:
        """Undirected adjacency of ``G_p``: chain edges between consecutive
        lock indices plus one edge per recorded write edge.

        Write edges are attached between ``lower`` and ``upper + 1`` when a
        lock state beyond the write exists (so that the articulation-point
        criterion of Corollary 1 coincides exactly with
        :meth:`well_defined`); a write edge whose span ends at the current
        frontier keeps its natural endpoint.
        """
        adj: dict[int, set[int]] = {v: set() for v in self.vertices()}
        for v in range(self._lock_count):
            adj[v].add(v + 1)
            adj[v + 1].add(v)
        for edge in self._edges:
            upper = min(edge.upper + 1, self._lock_count)
            if upper > edge.lower:
                adj[edge.lower].add(upper)
                adj[upper].add(edge.lower)
        return adj

    def articulation_points(self) -> set[int]:
        """Articulation points of ``G_p`` (Hopcroft–Tarjan)."""
        return algorithms.articulation_points(self.adjacency())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(
            f"{e.variable}:({e.lower},{e.upper}]" for e in self._edges
        )
        return (
            f"StateDependencyGraph(lock_count={self._lock_count}, "
            f"spans=[{spans}])"
        )
