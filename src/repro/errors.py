"""Exception hierarchy for the partial-rollback reproduction.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProtocolViolation(ReproError):
    """A transaction violated the two-phase locking protocol.

    Raised, for example, when a transaction issues a lock request after it
    has already unlocked an entity (the shrinking phase has begun), or when
    it accesses an entity it does not hold an appropriate lock on.
    """


class LockError(ReproError):
    """An invalid operation was issued against the lock manager."""


class UnknownEntityError(ReproError):
    """An operation referenced an entity that does not exist in the database."""


class UnknownTransactionError(ReproError):
    """An operation referenced a transaction the system does not know about."""


class RollbackError(ReproError):
    """A rollback could not be carried out as requested.

    Raised when the requested target lock state is not reachable under the
    active rollback strategy (e.g. a non-restorable state under the
    single-copy strategy) or is out of range.
    """


class StorageFault(RollbackError):
    """A rollback strategy's storage failed mid-operation.

    Raised (only) by injected faults — a multi-copy stack whose pop fails,
    an undo log whose apply fails — to model damaged partial-rollback
    state.  The scheduler responds by degrading the victim to a total
    restart (its partial-rollback state is untrusted, its initial state is
    always reconstructible) rather than aborting the run; see
    ``docs/RESILIENCE.md``.
    """


class DeadlockUnresolvableError(ReproError):
    """No victim choice could break a detected deadlock.

    This indicates a bug in a victim-selection policy (a correct policy can
    always break a deadlock, at worst by totally rolling back the requester);
    it is surfaced as an explicit error rather than silently hanging.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent or impossible state."""


class QuiescenceTimeout(SimulationError):
    """A driver's step budget ran out before every transaction finished.

    Carries a :class:`repro.core.diagnosis.LivelockDiagnosis` snapshot —
    the runnable/blocked split, the waits-for graph, and the preemption
    history — so the caller can tell an undersized budget apart from a
    genuine starvation or livelock condition.
    """

    def __init__(self, message: str, diagnosis=None) -> None:
        super().__init__(message)
        #: :class:`repro.core.diagnosis.LivelockDiagnosis` | None
        self.diagnosis = diagnosis


class LivelockDetected(SimulationError):
    """The starvation watchdog observed an unbounded preemption pattern.

    Raised when a transaction is preempted *despite* holding preemption
    immunity — the configured rollback bound is violated, which means the
    active victim policy ignores the Theorem 2 partial order (the paper's
    Figure 2 "potentially infinite mutual preemption").  Carries the same
    structured :class:`repro.core.diagnosis.LivelockDiagnosis` as
    :class:`QuiescenceTimeout`.
    """

    def __init__(self, message: str, diagnosis=None) -> None:
        super().__init__(message)
        #: :class:`repro.core.diagnosis.LivelockDiagnosis` | None
        self.diagnosis = diagnosis


class ConsistencyViolation(ReproError):
    """A database consistency constraint was violated.

    The paper assumes each transaction preserves consistency when run alone;
    the reproduction checks registered constraints after every completed
    transaction and at the end of every simulation so that serializability
    bugs in the scheduler surface as loud failures.
    """
