"""Programmatic constructions of the paper's Figures 1–5.

The SIGMOD '81 scan reproduces the figure captions and the surrounding
narrative but not the figure artwork, so each scenario here is built from
the *text*: every number the prose states (state indices, rollback costs
4/6/5, the chosen victim, which rollbacks remove which deadlocks, which
lock states are well-defined) is reproduced exactly; peripheral vertices
the prose only mentions in passing (T5, T6 in Figure 1) are reconstructed
minimally and documented as such.

Lock-index convention note (Figure 4): the paper's trivial well-defined
states are "lock index 0 or lock index 6" for a six-lock transaction.  In
this library's indexing, lock state ``k`` is the state immediately before
the ``k``-th lock request, so with no operations before the first lock
request, lock state 1 coincides with lock state 0 and both are trivially
well-defined — the same two trivial states, shifted by one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ops
from ..core.operations import Operation
from ..core.scheduler import Scheduler
from ..core.transaction import TransactionProgram
from ..graphs.concurrency import ConcurrencyGraph
from ..simulation.engine import SimulationEngine
from ..storage.database import Database


def _filler(count: int, prefix: str) -> list[Operation]:
    """Local-only padding operations used to hit exact state indices."""
    return [
        ops.assign(f"{prefix}{i}", ops.const(i)) for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Figure 1: exclusive-lock deadlock with cost-optimal victim selection
# ---------------------------------------------------------------------------


@dataclass
class Figure1Scenario:
    """The Figure 1(a) system, realised as live transaction programs.

    The prose fixes: T2 requested ``b`` from its 8th state and ``e`` from
    state 12; T3 requested ``c`` from state 5 and ``b`` from state 11; T4
    requested ``e`` from state 10 and ``c`` from state 15; T1 waits for
    ``b`` held by T2.  Rollback costs are then T2: 12-8=4, T3: 11-5=6,
    T4: 15-10=5, and the cost-optimal victim is T2.  T2 additionally holds
    ``f`` locked from its state 4 (stated in the Figure 2 narrative), which
    the Figure 2 scenario builds on.
    """

    database: Database
    programs: dict[str, TransactionProgram]

    #: The rollback costs the paper's prose states.
    paper_costs = {"T2": 4, "T3": 6, "T4": 5}
    #: The victim the paper's optimisation chooses.
    paper_victim = "T2"

    @classmethod
    def build(cls) -> "Figure1Scenario":
        database = Database(
            {name: 0 for name in ("a", "b", "c", "d", "e", "f")}
        )
        # Operation indices are state indices: the k-th operation runs in
        # state k.  Tail ops let every program outlive the deadlock.
        t1 = TransactionProgram("T1", [
            *_filler(3, "t1_"),
            ops.lock_exclusive("b"),          # state 3: waits for b
            ops.write("b", ops.entity("b") + ops.const(1)),
        ])
        t2 = TransactionProgram("T2", [
            *_filler(4, "t2a_"),
            ops.lock_exclusive("f"),          # state 4 (Figure 2 narrative)
            *_filler(3, "t2b_"),
            ops.lock_exclusive("b"),          # state 8
            *_filler(3, "t2c_"),
            ops.lock_exclusive("e"),          # state 12
            ops.write("e", ops.entity("e") + ops.const(1)),
            ops.write("b", ops.entity("b") + ops.const(1)),
            ops.write("f", ops.entity("f") + ops.const(1)),
        ])
        t3 = TransactionProgram("T3", [
            *_filler(5, "t3a_"),
            ops.lock_exclusive("c"),          # state 5
            *_filler(5, "t3b_"),
            ops.lock_exclusive("b"),          # state 11
            *_filler(2, "t3c_"),
            ops.lock_exclusive("f"),          # state 14 (Figure 2)
            ops.write("c", ops.entity("c") + ops.const(1)),
        ])
        t4 = TransactionProgram("T4", [
            *_filler(10, "t4a_"),
            ops.lock_exclusive("e"),          # state 10
            *_filler(4, "t4b_"),
            ops.lock_exclusive("c"),          # state 15
            ops.write("e", ops.entity("e") + ops.const(1)),
        ])
        return cls(
            database=database,
            programs={"T1": t1, "T2": t2, "T3": t3, "T4": t4},
        )

def drive_figure1(policy: str = "min-cost", strategy: str = "mcs"):
    """Run the Figure 1(a) interleaving up to the deadlock.

    Returns ``(engine, deadlock_result)`` where ``deadlock_result`` is the
    step result of T4's blocking request for ``c`` — the wait response that
    closes the cycle T2 -> T3 -> T4 -> T2.
    """
    scenario = Figure1Scenario.build()
    scheduler = Scheduler(scenario.database, strategy=strategy, policy=policy)
    engine = SimulationEngine(scheduler, max_steps=100_000,
                              livelock_window=400)
    for txn_id in ("T1", "T2", "T3", "T4"):
        engine.add(scenario.programs[txn_id])
    # T3: 5 fillers + lock c (granted)  -> pc 6, holds c
    engine.run_for("T3", 6)
    # T4: 10 fillers + lock e (granted) -> pc 11, holds e
    engine.run_for("T4", 11)
    # T2: 4 fillers + lock f + 3 fillers + lock b (granted) -> pc 9, then
    # 3 fillers + lock e -> blocks waiting for T4 (state 12).
    result = engine.run_to_block("T2")
    assert result is not None and result.txn_id == "T2"
    # T3: 5 fillers + lock b -> blocks waiting for T2 (state 11).
    engine.run_to_block("T3")
    # T1: 3 fillers + lock b -> blocks waiting for T2 (state 3).
    engine.run_to_block("T1")
    # T4: 4 fillers + lock c -> blocks; this wait closes the cycle.
    deadlock_result = engine.run_to_block("T4")
    return engine, deadlock_result


# ---------------------------------------------------------------------------
# Figure 2: potentially infinite mutual preemption
# ---------------------------------------------------------------------------


def drive_figure2(policy: str, strategy: str = "mcs",
                  livelock_window: int = 400):
    """Continue the Figure 1 system to completion (or livelock).

    Under unconstrained ``min-cost`` selection the configuration of
    Figure 1(a) recurs indefinitely: T2 and T3 alternately preempt each
    other exactly as §3.1 describes, and the run is flagged as livelocked.
    Under ``ordered-min-cost`` (Theorem 2) the run terminates.

    Returns the :class:`~repro.simulation.engine.SimulationResult`.
    """
    engine, _deadlock = drive_figure1(policy=policy, strategy=strategy)
    engine.livelock_window = livelock_window
    return engine.run()


# ---------------------------------------------------------------------------
# Figure 3: concurrency graphs with shared and exclusive locks
# ---------------------------------------------------------------------------


def figure3a() -> ConcurrencyGraph:
    """Figure 3(a): a deadlock-free graph that is a DAG but not a forest.

    T2 waits for ``a`` exclusively held by T1; T3 has requested an
    exclusive lock on ``c`` on which T1 and T2 hold shared locks, so T3
    waits for both (in-degree 2 — impossible with exclusive locks only).
    """
    graph = ConcurrencyGraph(["T1", "T2", "T3"])
    graph.add_wait("T1", "T2", "a")
    graph.add_wait("T1", "T3", "c")
    graph.add_wait("T2", "T3", "c")
    return graph


def figure3b() -> ConcurrencyGraph:
    """Figure 3(b): one wait response closing two cycles.

    Extends 3(a)'s pattern: T2 waits for ``a`` held by T1, T3 waits for
    ``b`` held by T2, and T1's exclusive request on ``e`` — shared-held by
    T2 and T3 — closes the cycles (T1 T2) and (T1 T2 T3).  Rollback of T1
    removes all deadlocks; so does rollback of T2 (it lies on both
    cycles).
    """
    graph = ConcurrencyGraph(["T1", "T2", "T3"])
    graph.add_wait("T1", "T2", "a")
    graph.add_wait("T2", "T3", "b")
    graph.add_wait("T2", "T1", "e")
    graph.add_wait("T3", "T1", "e")
    return graph


def figure3c() -> ConcurrencyGraph:
    """Figure 3(c): an exclusive request by T1 on ``f``, shared-held by T2
    and T3, closing two cycles that share only T1: rollback of T1 removes
    both, otherwise *both* T2 and T3 must be rolled back."""
    graph = ConcurrencyGraph(["T1", "T2", "T3"])
    graph.add_wait("T1", "T2", "a")
    graph.add_wait("T1", "T3", "b")
    graph.add_wait("T2", "T1", "f")
    graph.add_wait("T3", "T1", "f")
    return graph


# ---------------------------------------------------------------------------
# Figure 4: a write-scattered transaction and its state-dependency graph
# ---------------------------------------------------------------------------


def figure4_transaction() -> TransactionProgram:
    """A six-lock transaction whose writes are maximally scattered.

    Reconstructed from the prose: at its final lock state, *no*
    non-trivial lock state is well-defined, and deleting the single
    operation ``C <- K`` (here: the second write to ``C``) makes lock
    state 4 well-defined.  Write placement:

    * ``A`` (locked 1st): writes at lock indices 1 and 3 — kills states
      2 and 3;
    * ``C`` (locked 2nd): writes at lock indices 2 and 4 — kills states
      3 and 4 (the write at 4 is the ``C <- K`` of the paper);
    * ``D`` (locked 4th): writes at lock indices 4 and 5 — kills state 5.
    """
    return TransactionProgram("T_fig4", [
        ops.lock_exclusive("A"),                                  # lock 1
        ops.write("A", ops.entity("A") + ops.const(1)),           # idx 1
        ops.lock_exclusive("C"),                                  # lock 2
        ops.write("C", ops.entity("C") + ops.const(1)),           # idx 2
        ops.lock_exclusive("B"),                                  # lock 3
        ops.write("A", ops.entity("A") + ops.const(10)),          # idx 3
        ops.lock_exclusive("D"),                                  # lock 4
        ops.write("C", ops.const(7)),                             # C <- K
        ops.write("D", ops.entity("D") + ops.const(1)),           # idx 4
        ops.lock_exclusive("E"),                                  # lock 5
        ops.write("D", ops.entity("D") + ops.const(10)),          # idx 5
        ops.lock_exclusive("F"),                                  # lock 6
    ])


def figure4_transaction_without_ck() -> TransactionProgram:
    """The same transaction with the ``C <- K`` operation deleted — the
    paper's modification that makes lock state 4 well-defined."""
    base = figure4_transaction()
    operations = [
        op for op in base.operations
        if not (op.describe() == "write(C <- 7)")
    ]
    return TransactionProgram("T_fig4_noCK", operations)


# ---------------------------------------------------------------------------
# Figure 5: the same operations, write-clustered
# ---------------------------------------------------------------------------


def figure5_transaction() -> TransactionProgram:
    """Figure 4's operations reordered so each entity's writes cluster
    immediately after its lock (the §5-efficient structure): the number of
    well-defined states rises sharply."""
    return TransactionProgram("T_fig5", [
        ops.lock_exclusive("A"),                                  # lock 1
        ops.write("A", ops.entity("A") + ops.const(1)),
        ops.write("A", ops.entity("A") + ops.const(10)),
        ops.lock_exclusive("C"),                                  # lock 2
        ops.write("C", ops.entity("C") + ops.const(1)),
        ops.write("C", ops.const(7)),
        ops.lock_exclusive("B"),                                  # lock 3
        ops.lock_exclusive("D"),                                  # lock 4
        ops.write("D", ops.entity("D") + ops.const(1)),
        ops.write("D", ops.entity("D") + ops.const(10)),
        ops.lock_exclusive("E"),                                  # lock 5
        ops.lock_exclusive("F"),                                  # lock 6
    ])
