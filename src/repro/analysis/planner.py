"""Offline retention planning: compile-time optimisation of rollback.

§5 closes with two pointers to future work: restructuring transactions at
compilation time, and allocating "a bounded amount of extra storage to the
entities in order to maximize the number of well-defined states".  This
module combines them: given a *program* (so the write placement is known
statically) and a retention budget *k*, decide **which** destructive
writes should retain the value they overwrite so that the number of
well-defined lock states at the final lock state is maximised.

Model
-----
Each destructive write (a re-write of variable *x* at a later lock index)
kills the lock states in the half-open interval ``(prev_write, this
write]``.  Retaining the overwritten value neutralises exactly that
interval.  With intervals ``I_1..I_m`` and budget ``k``, choose a subset
``S`` (|S| <= k) maximising the number of lock states not covered by the
un-neutralised intervals — a weighted maximum-coverage problem over
interval complements.  Exact search is exponential in *m*; for the small
*m* real transactions have we solve exactly, and fall back to the classic
greedy (pick the interval whose neutralisation uncovers the most states)
beyond a threshold, inheriting greedy max-coverage's (1 - 1/e) guarantee.

The resulting plan is enforced at runtime by :func:`planned_allocator`,
a drop-in allocator for
:class:`~repro.core.k_copy.KCopyStrategy`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.operations import Assign, DeclareLastLock, Lock, Read, Write
from ..core.transaction import TransactionProgram

#: Above this many destructive writes the exact subset search is skipped.
EXACT_PLAN_LIMIT = 14


def _entity_key(name: str) -> str:
    return f"e:{name}"


def _local_key(name: str) -> str:
    return f"l:{name}"


@dataclass(frozen=True)
class KillInterval:
    """A destructive write: retaining its overwritten value keeps the lock
    states in ``(lo, hi]`` well-defined."""

    variable: str
    lo: int
    hi: int
    write_number: int  # 1-based index among this variable's writes

    def states(self) -> set[int]:
        return set(range(self.lo + 1, self.hi + 1))


def kill_intervals(program: TransactionProgram) -> list[KillInterval]:
    """Statically enumerate the program's destructive writes.

    Reads (into locals) and assignments count as writes to the local
    variable, mirroring the runtime strategies.  Monitoring stops at a
    last-lock declaration.
    """
    intervals: list[KillInterval] = []
    last_write: dict[str, int] = {}
    write_counts: dict[str, int] = {}
    lock_index = 0
    for op in program.operations:
        if isinstance(op, Lock):
            lock_index += 1
            continue
        if isinstance(op, DeclareLastLock):
            break
        if isinstance(op, Write):
            variable = _entity_key(op.entity_name)
        elif isinstance(op, Read):
            variable = _local_key(op.into)
        elif isinstance(op, Assign):
            variable = _local_key(op.var_name)
        else:
            continue
        write_counts[variable] = write_counts.get(variable, 0) + 1
        previous = last_write.get(variable)
        if previous is not None and lock_index > previous:
            intervals.append(
                KillInterval(
                    variable=variable,
                    lo=previous,
                    hi=lock_index,
                    write_number=write_counts[variable],
                )
            )
        last_write[variable] = lock_index
    return intervals


def well_defined_after(
    program: TransactionProgram, neutralised: set[KillInterval]
) -> list[int]:
    """Well-defined lock states if *neutralised* intervals are retained."""
    n_locks = len(program.lock_operations)
    covered: set[int] = set()
    for interval in kill_intervals(program):
        if interval not in neutralised:
            covered |= interval.states()
    return [q for q in range(n_locks + 1) if q not in covered]


@dataclass
class RetentionPlan:
    """Which destructive writes should retain, and what that buys."""

    program_id: str
    budget: int
    chosen: set[KillInterval]
    well_defined: list[int]
    baseline_well_defined: list[int]

    @property
    def gain(self) -> int:
        return len(self.well_defined) - len(self.baseline_well_defined)


def plan_retention(
    program: TransactionProgram, budget: int
) -> RetentionPlan:
    """Choose up to *budget* intervals to neutralise, maximising the
    number of well-defined lock states at the final lock state."""
    if budget < 0:
        raise ValueError("budget must be >= 0")
    intervals = kill_intervals(program)
    baseline = well_defined_after(program, set())
    if budget == 0 or not intervals:
        return RetentionPlan(
            program.txn_id, budget, set(), baseline, baseline
        )
    if len(intervals) <= EXACT_PLAN_LIMIT:
        chosen = _plan_exact(program, intervals, budget)
    else:
        chosen = _plan_greedy(program, intervals, budget)
    return RetentionPlan(
        program.txn_id,
        budget,
        chosen,
        well_defined_after(program, chosen),
        baseline,
    )


def _plan_exact(
    program: TransactionProgram,
    intervals: list[KillInterval],
    budget: int,
) -> set[KillInterval]:
    best: set[KillInterval] = set()
    best_count = len(well_defined_after(program, set()))
    max_size = min(budget, len(intervals))
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(intervals, size):
            chosen = set(combo)
            count = len(well_defined_after(program, chosen))
            if count > best_count:
                best, best_count = chosen, count
    return best


def _plan_greedy(
    program: TransactionProgram,
    intervals: list[KillInterval],
    budget: int,
) -> set[KillInterval]:
    chosen: set[KillInterval] = set()
    for _ in range(min(budget, len(intervals))):
        current = len(well_defined_after(program, chosen))
        best_gain = 0
        best_interval = None
        for interval in intervals:
            if interval in chosen:
                continue
            gain = len(
                well_defined_after(program, chosen | {interval})
            ) - current
            if gain > best_gain:
                best_gain, best_interval = gain, interval
        if best_interval is None:
            break
        chosen.add(best_interval)
    return chosen


def planned_allocator(plan: RetentionPlan):
    """Allocator for :class:`~repro.core.k_copy.KCopyStrategy` enforcing a
    precomputed plan.

    The runtime allocator is consulted per destructive write with the
    interval's width, the variable, and the write's lock index; the pair
    ``(variable, lock index)`` uniquely identifies the interval, so the
    allocator retains exactly the planned set.  Writes the plan did not
    select are declined even when budget remains.

    Note: kill intervals are keyed by the variable's *runtime* name with
    the ``e:``/``l:`` prefix the planner uses, while
    :class:`~repro.core.k_copy.KCopyStrategy` reports bare names — the
    allocator accepts both.
    """
    keys = {(iv.variable, iv.hi) for iv in plan.chosen}
    bare = {
        (variable.split(":", 1)[1], hi) for variable, hi in keys
    }

    def allocate(_width: int, variable: str, lock_index: int) -> bool:
        return (variable, lock_index) in keys or (
            (variable, lock_index) in bare
        )

    return allocate
