"""Analysis layer: §5 transaction-structure analysis and the paper's
figure scenarios."""

from .figures import (
    Figure1Scenario,
    drive_figure1,
    drive_figure2,
    figure3a,
    figure3b,
    figure3c,
    figure4_transaction,
    figure4_transaction_without_ck,
    figure5_transaction,
)
from .planner import (
    KillInterval,
    RetentionPlan,
    kill_intervals,
    plan_retention,
    planned_allocator,
    well_defined_after,
)
from .structure import (
    StructureReport,
    cluster_writes,
    clustering_score,
    is_three_phase,
    static_sdg,
    structure_report,
    three_phase_variant,
    well_defined_count,
    well_defined_states,
)

__all__ = [
    "Figure1Scenario",
    "KillInterval",
    "RetentionPlan",
    "kill_intervals",
    "plan_retention",
    "planned_allocator",
    "well_defined_after",
    "StructureReport",
    "cluster_writes",
    "clustering_score",
    "drive_figure1",
    "drive_figure2",
    "figure3a",
    "figure3b",
    "figure3c",
    "figure4_transaction",
    "figure4_transaction_without_ck",
    "figure5_transaction",
    "is_three_phase",
    "static_sdg",
    "structure_report",
    "three_phase_variant",
    "well_defined_count",
    "well_defined_states",
]
