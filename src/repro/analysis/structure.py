"""Transaction-structure analysis (§5 of the paper).

The efficiency of single-copy partial rollback depends on the *structure*
of the transactions: clustering the writes to each entity (few lock states
between successive writes) maximises well-defined states, and the
three-phase acquire/update/release discipline removes monitoring entirely.
This module provides:

* :func:`static_sdg` — the state-dependency graph a program would have at
  its final lock state, computed without running it;
* :func:`well_defined_count` / :func:`well_defined_states` — how many
  rollback targets the single-copy strategy would have;
* :func:`clustering_score` — a [0, 1] measure of write clustering;
* :func:`cluster_writes` — restructure a program by hoisting each write as
  early as its data dependencies allow (the §5 optimisation, "perhaps at
  the time of their compilation");
* :func:`three_phase_variant` — restructure into the
  acquisition/update/release form with a last-lock declaration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.operations import (
    Assign,
    BinOp,
    Const,
    DeclareLastLock,
    EntityRef,
    Expr,
    Lock,
    Operation,
    Read,
    Unlock,
    Var,
    Write,
)
from ..core.transaction import TransactionProgram
from ..graphs.state_dependency import StateDependencyGraph


def _entity_key(name: str) -> str:
    return f"e:{name}"


def _local_key(name: str) -> str:
    return f"l:{name}"


def static_sdg(program: TransactionProgram) -> StateDependencyGraph:
    """The state-dependency graph of *program* at its last lock state.

    Mirrors exactly what :class:`~repro.core.single_copy.SingleCopyStrategy`
    would build when the program runs alone: each lock request adds a lock
    state; each write to an entity, each read into a local, and each local
    assignment records a write edge.
    """
    sdg = StateDependencyGraph()
    for op in program.operations:
        if isinstance(op, Lock):
            sdg.add_lock_state()
        elif isinstance(op, Write):
            sdg.record_write(_entity_key(op.entity_name))
        elif isinstance(op, Read):
            sdg.record_write(_local_key(op.into))
        elif isinstance(op, Assign):
            sdg.record_write(_local_key(op.var_name))
        elif isinstance(op, DeclareLastLock):
            break  # monitoring stops; later writes create no edges
    return sdg


def well_defined_states(program: TransactionProgram) -> list[int]:
    """Well-defined lock indices of the program at its final lock state."""
    return static_sdg(program).well_defined_states()


def well_defined_count(program: TransactionProgram) -> int:
    """Number of well-defined lock states (higher = cheaper rollbacks)."""
    return len(well_defined_states(program))


@dataclass
class StructureReport:
    """Summary of a program's rollback-friendliness (§5 metrics)."""

    txn_id: str
    lock_count: int
    operation_count: int
    well_defined: int
    well_defined_fraction: float
    clustering: float
    three_phase: bool

    def __str__(self) -> str:
        return (
            f"{self.txn_id}: locks={self.lock_count} "
            f"ops={self.operation_count} "
            f"well-defined={self.well_defined}/{self.lock_count + 1} "
            f"clustering={self.clustering:.2f} "
            f"three-phase={'yes' if self.three_phase else 'no'}"
        )


def clustering_score(program: TransactionProgram) -> float:
    """How clustered the writes are, in [0, 1].

    For each written entity, the *spread* is the number of lock states
    between its first and last write (0 when all writes share a lock
    index).  The score is ``1 - mean(spread / max_possible_spread)``; a
    program whose writes all land immediately after their locks scores 1.
    Programs without writes or with a single lock score 1 (nothing to
    cluster).
    """
    lock_index = 0
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    total_locks = len(program.lock_operations)
    for op in program.operations:
        if isinstance(op, Lock):
            lock_index += 1
        elif isinstance(op, Write):
            first.setdefault(op.entity_name, lock_index)
            last[op.entity_name] = lock_index
    if not first or total_locks <= 1:
        return 1.0
    spreads = [
        (last[name] - first[name]) / (total_locks - 1) for name in first
    ]
    return 1.0 - sum(spreads) / len(spreads)


def is_three_phase(program: TransactionProgram) -> bool:
    """True iff the program is acquire-then-update-then-release with all
    writes after the last lock request."""
    seen_nonlock_after_lock = False
    seen_unlock = False
    for op in program.operations:
        if isinstance(op, Lock):
            if seen_nonlock_after_lock or seen_unlock:
                return False
        elif isinstance(op, (Write, Read, Assign, DeclareLastLock)):
            seen_nonlock_after_lock = True
            if seen_unlock and not isinstance(op, DeclareLastLock):
                return False
        elif isinstance(op, Unlock):
            seen_unlock = True
    return True


def structure_report(program: TransactionProgram) -> StructureReport:
    """Compute the full §5 report for one program."""
    lock_count = len(program.lock_operations)
    count = well_defined_count(program)
    return StructureReport(
        txn_id=program.txn_id,
        lock_count=lock_count,
        operation_count=len(program.operations),
        well_defined=count,
        well_defined_fraction=count / (lock_count + 1) if lock_count else 1.0,
        clustering=clustering_score(program),
        three_phase=is_three_phase(program),
    )


# ---------------------------------------------------------------------------
# Restructuring transforms
# ---------------------------------------------------------------------------


def _expr_dependencies(expr) -> tuple[set[str], set[str], bool]:
    """(locals read, entities read, analysable) for an expression tree.

    Bare callables are opaque: they may read anything, so they pin the
    operation in place (``analysable=False``).
    """
    if isinstance(expr, Const):
        return set(), set(), True
    if isinstance(expr, Var):
        return {expr.name}, set(), True
    if isinstance(expr, EntityRef):
        return set(), {expr.name}, True
    if isinstance(expr, BinOp):
        l_locals, l_entities, l_ok = _expr_dependencies(expr.left)
        r_locals, r_entities, r_ok = _expr_dependencies(expr.right)
        return l_locals | r_locals, l_entities | r_entities, l_ok and r_ok
    if isinstance(expr, Expr):
        return set(), set(), False
    if callable(expr):
        return set(), set(), False
    return set(), set(), True  # plain constant


def _op_reads_writes(op: Operation) -> tuple[set[str], set[str], bool]:
    """(names read, names written, analysable) with ``e:``/``l:`` keys."""
    if isinstance(op, Read):
        return {_entity_key(op.entity_name)}, {_local_key(op.into)}, True
    if isinstance(op, Write):
        locals_read, entities_read, ok = _expr_dependencies(op.expr)
        reads = {_local_key(v) for v in locals_read}
        reads |= {_entity_key(e) for e in entities_read}
        return reads, {_entity_key(op.entity_name)}, ok
    if isinstance(op, Assign):
        locals_read, entities_read, ok = _expr_dependencies(op.expr)
        reads = {_local_key(v) for v in locals_read}
        reads |= {_entity_key(e) for e in entities_read}
        return reads, {_local_key(op.var_name)}, ok
    return set(), set(), True


def _require_static(program: TransactionProgram, what: str) -> None:
    from ..core.interactive import InteractiveProgram

    if isinstance(program, InteractiveProgram):
        raise TypeError(
            f"{what} needs the full operation sequence a priori; "
            f"interactive scripts materialise operations at run time"
        )


def cluster_writes(program: TransactionProgram) -> TransactionProgram:
    """Hoist data operations as early as their dependencies allow.

    Walks the program front to back, moving each read/write/assign to the
    earliest position after (a) the lock of every entity it touches and
    (b) the most recent operation that writes something it reads or reads
    something it writes.  Lock, unlock, and declaration operations keep
    their relative order, so the locking behaviour — and therefore the
    concurrency — is unchanged; only write *placement* improves, which is
    precisely the §5 optimisation.

    Operations with opaque (callable) expressions are never moved.
    """
    _require_static(program, "cluster_writes")
    result: list[Operation] = []
    for op in program.operations:
        if isinstance(op, (Lock, Unlock, DeclareLastLock)):
            result.append(op)
            continue
        reads, writes, analysable = _op_reads_writes(op)
        if not analysable:
            result.append(op)
            continue
        touched = {
            name[2:] for name in reads | writes if name.startswith("e:")
        }
        # Find the earliest insertion point: scan backwards over the
        # current suffix while the operation commutes with what precedes.
        position = len(result)
        while position > 0:
            prev = result[position - 1]
            if isinstance(prev, (Unlock, DeclareLastLock)):
                break
            if isinstance(prev, Lock):
                if prev.entity_name in touched:
                    break
                position -= 1
                continue
            prev_reads, prev_writes, prev_ok = _op_reads_writes(prev)
            if not prev_ok:
                break
            if (
                writes & (prev_reads | prev_writes)
                or reads & prev_writes
            ):
                break
            position -= 1
        result.insert(position, op)
    return TransactionProgram(
        program.txn_id, result, program.initial_locals
    )


def three_phase_variant(program: TransactionProgram) -> TransactionProgram:
    """Restructure into acquire / declare / update / release.

    All lock requests are hoisted to the front (in original order — this
    only ever acquires locks *earlier*, so every data access remains
    covered), a last-lock declaration is inserted, data operations follow
    in original order, and explicit unlocks (if any) run at the end.
    """
    _require_static(program, "three_phase_variant")
    locks = [op for op in program.operations if isinstance(op, Lock)]
    unlocks = [op for op in program.operations if isinstance(op, Unlock)]
    data = [
        op
        for op in program.operations
        if not isinstance(op, (Lock, Unlock, DeclareLastLock))
    ]
    operations: list[Operation] = [*locks]
    if locks:
        operations.append(DeclareLastLock())
    operations.extend(data)
    operations.extend(unlocks)
    return TransactionProgram(
        program.txn_id, operations, program.initial_locals
    )
