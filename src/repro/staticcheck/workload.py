"""Static workload risk analysis (Pillar C of the analysis layer).

The predictor in :mod:`repro.staticcheck.predict` needs a recorded
trace; this module needs only the *programs*.  A transaction template —
the ordered ``(entity, mode)`` lock sequence of a
:class:`~repro.core.transaction.TransactionProgram` or a service
:class:`~repro.service.session.SessionProgram` — is static data, so the
lock-order graph of an entire workload can be built and scored without
executing anything.

The analysis follows the probabilistic deadlock-prevention argument
(PAPERS.md: "Revisiting deadlock prevention: a probabilistic
approach"): deadlock risk lives in *lock-order inversions* — template
``t`` locks ``e`` before ``f`` while ``u`` locks ``f`` before ``e``,
with conflicting modes on both — and the number of transaction pairs
grows quadratically in the multiprogramming level, so a workload's
structural risk translates directly into a recommended MPL.  Concretely:

* templates are grouped into **workload classes** by their structural
  signature (reader vs writer, lock count) or supplied explicitly;
* every feasible pairwise inversion is counted, after the same
  gate-lock filter the dynamic predictor applies (a common earlier
  entity locked in incompatible modes by both templates serialises the
  pair — the inversion can never close);
* a pair's deadlock score is ``1 - exp(-h)`` where the hazard ``h``
  sums each inversion's chance of joint residence in the critical
  window (``1 / (len_t * len_u)`` per inversion — both transactions
  must sit between their first ring lock and their blocking request at
  the same time).  This is a structural *ranking* score, deliberately
  workload-relative rather than a calibrated probability;
* cross-class entity **cycles** are enumerated on the pooled lock-order
  graph with the predictor's own machinery, so a three-class ring that
  no pair exhibits still surfaces;
* the **recommended MPL** is the largest ``n`` whose expected number of
  deadlocking pairs ``C(n, 2) * mean_pair_risk`` stays within a budget
  (default 0.5 expected deadlocks) — the admission layer's
  ``predictive`` policy seeds its window from exactly this number.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..core.operations import Lock, Unlock
from ..core.transaction import TransactionProgram
from ..locking.modes import LockMode
from ..simulation.workload import WorkloadConfig, generate_workload
from .events import AbstractLockEvent, events_from_acquisitions
from .predict import LockOrderGraph

#: Expected-deadlock budget the MPL recommendation defaults to.
DEFAULT_BUDGET = 0.5
#: Recommendation ceiling when a workload carries no structural risk.
MAX_RECOMMENDED_MPL = 64


@dataclass(frozen=True)
class TransactionTemplate:
    """The static lock shape of one transaction program.

    ``locks`` is the ordered acquisition sequence; two-phase programs
    never re-lock after an unlock, so the sequence *is* the program's
    whole locking behaviour.
    """

    name: str
    locks: tuple[tuple[str, LockMode], ...]

    @classmethod
    def from_program(cls, program: TransactionProgram) -> "TransactionTemplate":
        """Extract the template of any transaction program, unexecuted.

        Works on :class:`~repro.service.session.SessionProgram` too —
        it subclasses :class:`TransactionProgram` and keeps the same
        append-only operation list.
        """
        locks: list[tuple[str, LockMode]] = []
        seen: set[str] = set()
        for op in program.operations:
            if isinstance(op, Lock) and op.entity_name not in seen:
                seen.add(op.entity_name)
                locks.append((op.entity_name, op.mode))
            elif isinstance(op, Unlock):
                # Shrinking phase: no further acquisitions may follow
                # (enforced by the program's own two-phase validation),
                # so the template is already complete.
                break
        return cls(name=program.txn_id, locks=tuple(locks))

    @property
    def signature(self) -> str:
        """Structural class key: ``w3`` = writer with 3 locks, ``r2``…"""
        kind = (
            "w"
            if any(mode.is_exclusive for _e, mode in self.locks)
            else "r"
        )
        return f"{kind}{len(self.locks)}"

    @property
    def entities(self) -> tuple[str, ...]:
        return tuple(entity for entity, _mode in self.locks)

    def mode_of(self, entity: str) -> LockMode | None:
        for name, mode in self.locks:
            if name == entity:
                return mode
        return None

    def position_of(self, entity: str) -> int:
        for index, (name, _mode) in enumerate(self.locks):
            if name == entity:
                return index
        return -1


@dataclass
class WorkloadClass:
    """A named group of templates (a transaction class à la TPC-C)."""

    name: str
    templates: list[TransactionTemplate]

    @classmethod
    def from_programs(
        cls, name: str, programs: Iterable[TransactionProgram]
    ) -> "WorkloadClass":
        return cls(
            name=name,
            templates=[
                TransactionTemplate.from_program(p) for p in programs
            ],
        )


def classify_templates(
    templates: Iterable[TransactionTemplate],
) -> list[WorkloadClass]:
    """Group templates into classes by structural signature."""
    groups: dict[str, list[TransactionTemplate]] = {}
    for template in templates:
        groups.setdefault(template.signature, []).append(template)
    return [
        WorkloadClass(name=signature, templates=groups[signature])
        for signature in sorted(groups)
    ]


# -- pairwise inversion analysis ---------------------------------------------


def template_inversions(
    a: TransactionTemplate, b: TransactionTemplate
) -> list[tuple[str, str]]:
    """Feasible lock-order inversions between two templates.

    ``(e, f)`` is returned when *a* locks ``e`` before ``f``, *b* locks
    ``f`` before ``e``, the modes conflict on both entities, and no
    common earlier entity gates the pair (both templates lock it before
    their blocking points, in incompatible modes — that serialises
    them, exactly the dynamic predictor's guard rule).
    """
    inversions: list[tuple[str, str]] = []
    for i_e, (e, a_mode_e) in enumerate(a.locks):
        b_pos_e = b.position_of(e)
        if b_pos_e < 0:
            continue
        for i_f in range(i_e + 1, len(a.locks)):
            f, a_mode_f = a.locks[i_f]
            b_pos_f = b.position_of(f)
            if b_pos_f < 0 or b_pos_f >= b_pos_e:
                continue  # b must lock f strictly before e
            b_mode_e = b.locks[b_pos_e][1]
            b_mode_f = b.locks[b_pos_f][1]
            if a_mode_e.compatible_with(b_mode_e):
                continue  # no conflict on the entity a holds
            if a_mode_f.compatible_with(b_mode_f):
                continue  # no conflict on the entity b holds
            # Gate filter: a blocks requesting f (guards = locks before
            # i_f), b blocks requesting e (guards = locks before b_pos_e).
            gated = False
            a_guards = dict(a.locks[:i_f])
            for g, b_mode_g in b.locks[:b_pos_e]:
                a_mode_g = a_guards.get(g)
                if a_mode_g is not None and not a_mode_g.compatible_with(
                    b_mode_g
                ):
                    gated = True
                    break
            if not gated:
                inversions.append((e, f))
    return inversions


def pair_hazard(
    a: TransactionTemplate, b: TransactionTemplate
) -> tuple[float, list[tuple[str, str]]]:
    """Structural hazard of the (a, b) pair plus its inversions.

    Each inversion contributes ``1 / (len_a * len_b)`` — the chance
    both transactions occupy their critical windows simultaneously
    shrinks with program length — and the pair's deadlock score is
    ``1 - exp(-hazard)``.
    """
    if not a.locks or not b.locks:
        return 0.0, []
    inversions = sorted(
        set(template_inversions(a, b)) | set(template_inversions(b, a))
    )
    hazard = len(inversions) / float(len(a.locks) * len(b.locks))
    return hazard, inversions


# -- the report ---------------------------------------------------------------


@dataclass(frozen=True)
class ClassRisk:
    """One workload class's structural deadlock risk."""

    name: str
    templates: int
    score: float
    inversions: int
    hot_entities: tuple[str, ...]


@dataclass(frozen=True)
class PairRisk:
    """Deadlock score between two classes (possibly the same one)."""

    a: str
    b: str
    score: float
    inversions: int


@dataclass
class RiskReport:
    """The static analyzer's verdict on one workload."""

    name: str
    classes: list[ClassRisk] = field(default_factory=list)
    pairs: list[PairRisk] = field(default_factory=list)
    #: Entity rings feasible on the pooled lock-order graph, each with
    #: the participating template names.
    cycles: list[dict[str, tuple[str, ...]]] = field(default_factory=list)
    #: Mean template-pair deadlock score (drives the MPL recommendation).
    mean_pair_risk: float = 0.0
    #: Per-template score (mean against the rest of the pool) — the
    #: admission layer's reordering priority.
    template_risk: dict[str, float] = field(default_factory=dict)
    total_templates: int = 0

    def recommended_mpl(self, budget: float = DEFAULT_BUDGET) -> int:
        """Largest MPL whose expected deadlocking pairs fit *budget*.

        ``C(n, 2) * mean_pair_risk <= budget`` solved for ``n``:
        ``n = (1 + sqrt(1 + 8 * budget / p)) / 2``, floored, clamped to
        ``[1, MAX_RECOMMENDED_MPL]``; a risk-free workload gets the cap.
        """
        p = self.mean_pair_risk
        if p <= 0.0:
            return MAX_RECOMMENDED_MPL
        n = int((1.0 + math.sqrt(1.0 + 8.0 * budget / p)) / 2.0)
        return max(1, min(MAX_RECOMMENDED_MPL, n))

    def risk_of(self, template: TransactionTemplate) -> float:
        """Score for a (possibly unseen) template against this pool.

        Known templates answer from the precomputed table; new ones —
        e.g. a live :class:`~repro.service.session.SessionProgram`
        arriving at admission — are scored by their signature class's
        mean, falling back to the pool mean.
        """
        known = self.template_risk.get(template.name)
        if known is not None:
            return known
        for cls in self.classes:
            if cls.name == template.signature:
                return cls.score
        return self.mean_pair_risk

    def to_obj(self) -> dict[str, object]:
        """JSON-ready form (stable key order via sort_keys dumps)."""
        return {
            "name": self.name,
            "classes": [
                {
                    "name": c.name,
                    "templates": c.templates,
                    "score": round(c.score, 6),
                    "inversions": c.inversions,
                    "hot_entities": list(c.hot_entities),
                }
                for c in self.classes
            ],
            "pairs": [
                {
                    "a": p.a,
                    "b": p.b,
                    "score": round(p.score, 6),
                    "inversions": p.inversions,
                }
                for p in self.pairs
            ],
            "cycles": [
                {
                    "entities": list(cycle["entities"]),
                    "templates": list(cycle["templates"]),
                }
                for cycle in self.cycles
            ],
            "mean_pair_risk": round(self.mean_pair_risk, 6),
            "recommended_mpl": self.recommended_mpl(),
            "total_templates": self.total_templates,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_obj(), indent=2, sort_keys=True)

    def describe(self) -> str:
        """Multi-line human-readable report (the ``repro advise`` body)."""
        lines = [
            f"workload             {self.name}",
            f"templates            {self.total_templates} "
            f"in {len(self.classes)} class(es)",
            f"mean pair risk       {self.mean_pair_risk:.4f}",
            f"recommended MPL      {self.recommended_mpl()} "
            f"(budget {DEFAULT_BUDGET} expected deadlocks)",
        ]
        for cls in self.classes:
            hot = ", ".join(cls.hot_entities[:4]) or "none"
            lines.append(
                f"class {cls.name:<6} score {cls.score:.4f}  "
                f"templates {cls.templates}  inversions {cls.inversions}  "
                f"hot [{hot}]"
            )
        for pair in self.pairs[:6]:
            lines.append(
                f"pair  {pair.a}~{pair.b:<5} score {pair.score:.4f}  "
                f"inversions {pair.inversions}"
            )
        if self.cycles:
            for cycle in self.cycles[:4]:
                ring = " -> ".join(
                    cycle["entities"] + (cycle["entities"][0],)
                )
                lines.append(
                    f"cycle [{ring}] via {', '.join(cycle['templates'])}"
                )
            if len(self.cycles) > 4:
                lines.append(f"... and {len(self.cycles) - 4} more cycles")
        else:
            lines.append("cycle none feasible on the pooled lock-order graph")
        return "\n".join(lines)


# -- the analysis --------------------------------------------------------------


@dataclass(frozen=True)
class _TemplateAcquisition:
    """Adapter feeding template locks into the predictor's graph."""

    txn: str
    entity: str
    mode: LockMode
    held_before: tuple[tuple[str, LockMode], ...]


def _template_events(
    templates: Sequence[TransactionTemplate],
) -> list[AbstractLockEvent]:
    acquisitions = [
        _TemplateAcquisition(
            txn=template.name,
            entity=entity,
            mode=mode,
            held_before=template.locks[:index],
        )
        for template in templates
        for index, (entity, mode) in enumerate(template.locks)
    ]
    return events_from_acquisitions(acquisitions)


def potential_cycles(
    templates: Sequence[TransactionTemplate],
    max_cycle_length: int = 4,
    limit: int = 50,
) -> list[dict[str, tuple[str, ...]]]:
    """Feasible entity rings on the pooled template lock-order graph.

    Reuses the dynamic predictor's cycle enumeration and feasibility
    check (mode conflicts + gate locks); templates of one pool share a
    segment, so the vector-clock test never prunes here — exactly
    right, since nothing orders two static templates.
    """
    graph = LockOrderGraph(_template_events(templates))
    found: list[dict[str, tuple[str, ...]]] = []
    for cycle in graph.cycles(max_length=max_cycle_length, limit=limit):
        found.append(
            {
                "entities": tuple(edge.held for edge in cycle),
                "templates": tuple(edge.txn for edge in cycle),
            }
        )
    return found


def analyze_classes(
    classes: Sequence[WorkloadClass],
    name: str = "workload",
    max_cycle_length: int = 4,
) -> RiskReport:
    """Score *classes* without executing anything."""
    report = RiskReport(name=name)
    pool: list[tuple[str, TransactionTemplate]] = [
        (cls.name, template)
        for cls in classes
        for template in cls.templates
    ]
    report.total_templates = len(pool)
    if not pool:
        return report

    # Template-pair scores, aggregated per class pair and per template.
    pair_scores: dict[tuple[str, str], list[float]] = {}
    pair_inversions: dict[tuple[str, str], int] = {}
    per_template: dict[str, list[float]] = {t.name: [] for _c, t in pool}
    entity_heat: dict[str, dict[str, int]] = {}
    all_scores: list[float] = []
    for i in range(len(pool)):
        class_a, a = pool[i]
        for j in range(i + 1, len(pool)):
            class_b, b = pool[j]
            hazard, inversions = pair_hazard(a, b)
            score = 1.0 - math.exp(-hazard)
            all_scores.append(score)
            per_template[a.name].append(score)
            per_template[b.name].append(score)
            key = (min(class_a, class_b), max(class_a, class_b))
            pair_scores.setdefault(key, []).append(score)
            pair_inversions[key] = pair_inversions.get(key, 0) + len(
                inversions
            )
            for e, f in inversions:
                for cls_name in (class_a, class_b):
                    heat = entity_heat.setdefault(cls_name, {})
                    heat[e] = heat.get(e, 0) + 1
                    heat[f] = heat.get(f, 0) + 1

    report.mean_pair_risk = (
        sum(all_scores) / len(all_scores) if all_scores else 0.0
    )
    report.template_risk = {
        tname: (sum(scores) / len(scores) if scores else 0.0)
        for tname, scores in per_template.items()
    }
    for cls in classes:
        scores = [
            score
            for tname, score in report.template_risk.items()
            if any(t.name == tname for t in cls.templates)
        ]
        heat = entity_heat.get(cls.name, {})
        report.classes.append(
            ClassRisk(
                name=cls.name,
                templates=len(cls.templates),
                score=sum(scores) / len(scores) if scores else 0.0,
                inversions=sum(
                    count
                    for key, count in pair_inversions.items()
                    if cls.name in key
                ),
                hot_entities=tuple(
                    sorted(heat, key=lambda e: (-heat[e], e))[:8]
                ),
            )
        )
    report.pairs = sorted(
        (
            PairRisk(
                a=key[0],
                b=key[1],
                score=sum(scores) / len(scores),
                inversions=pair_inversions[key],
            )
            for key, scores in pair_scores.items()
        ),
        key=lambda p: (-p.score, p.a, p.b),
    )
    report.cycles = potential_cycles(
        [t for _c, t in pool], max_cycle_length=max_cycle_length
    )
    return report


def analyze_programs(
    programs: Iterable[TransactionProgram],
    name: str = "workload",
    max_cycle_length: int = 4,
) -> RiskReport:
    """Score a program set, auto-classed by structural signature."""
    templates = [TransactionTemplate.from_program(p) for p in programs]
    return analyze_classes(
        classify_templates(templates),
        name=name,
        max_cycle_length=max_cycle_length,
    )


def analyze_config(
    config: WorkloadConfig,
    seed: int = 0,
    name: str = "",
    max_cycle_length: int = 4,
) -> RiskReport:
    """Score the workload a ``(config, seed)`` pair *would* generate.

    Generation is pure and cheap (no execution), so this is still a
    static analysis: the engine never runs.
    """
    _db, programs = generate_workload(config, seed=seed)
    return analyze_programs(
        programs,
        name=name or f"generated(seed={seed})",
        max_cycle_length=max_cycle_length,
    )


def analyze_sequences(
    sequences: Mapping[str, Sequence[tuple[str, LockMode]]],
    name: str = "sequences",
    max_cycle_length: int = 4,
) -> RiskReport:
    """Score raw lock sequences (e.g. a journal's per-txn grants)."""
    templates = [
        TransactionTemplate(name=txn, locks=tuple(locks))
        for txn, locks in sorted(sequences.items())
    ]
    return analyze_classes(
        classify_templates(templates),
        name=name,
        max_cycle_length=max_cycle_length,
    )


def analyze_journal(
    journal: str | Path, max_cycle_length: int = 4
) -> RiskReport:
    """Score the workload a service journal recorded."""
    from .events import harvest_journal

    trace = harvest_journal(journal)
    return analyze_sequences(
        trace.lock_sequences,
        name=str(journal),
        max_cycle_length=max_cycle_length,
    )
