"""Trace-based deadlock prediction (Pillar B of the analysis layer).

One recorded execution rarely hits every deadlock its workload can
produce — the cycle only closes under the interleavings that drive each
participant into its blocking position simultaneously.  But a *single*
trace already reveals the ingredient that makes those interleavings
dangerous: the lock-order relation.  Following the lock-graph school of
dynamic deadlock prediction (Goodlock and its partial-order
refinements, PAPERS.md), this module

1. **harvests** abstract lock events — either by replaying a recorded
   :class:`~repro.verification.cases.ReplayCase` through the real
   engine, or by reading a service WAL/request journal
   (:func:`~repro.staticcheck.events.harvest_journal`) — each event
   carrying the acquiring transaction's held set and a vector clock
   over the sound happens-before order (program order plus boot-segment
   barriers, see :mod:`repro.staticcheck.events`);
2. builds the **lock-order graph** — an arc ``e1 -> e2`` whenever some
   transaction acquired ``e2`` while holding ``e1`` — and enumerates
   its cycles with one transaction per arc;
3. applies the **predictive closure's feasibility check**: a cycle is
   reported only if its blocking acquisitions are pairwise *concurrent*
   under the partial order (vector clocks — a crash barrier between two
   acquisitions makes their reordering unreal), no two participants
   held a common guard lock in incompatible modes (a shared gate
   serialises their blocking points), and each waiter's requested mode
   conflicts with the next holder's mode;
4. **cross-validates** every feasible cycle against the engine itself:
   a witness schedule is synthesized (run each participant up to its
   blocking position, then let each issue its fatal request) and
   replayed; the prediction counts as *confirmed* only if the engine's
   own detector reports the predicted cycle.

Because this repo's transaction programs are straight-line and
two-phase (no lock follows an unlock), held sets grow monotonically up
to each blocking point, which makes the pairwise feasibility check
exact and the serial-prefix witness complete *for this program class*:
every feasible cycle is realizable, so ``repro lint --predict`` fails
if any feasible prediction cannot be confirmed (that would mean the
closure over-approximated).

Two selectable methods (``method=`` on every entry point):

``partial-order``
    The sound closure above; default search depth 4 arcs.
``gate-lock``
    The legacy heuristic this repo shipped first: same guard and
    mode-conflict tests but no vector clocks and a depth-3 default.
    Kept as the baseline the regression suite compares against — the
    partial-order method must find a superset of its confirmed
    witnesses (see ``tests/regressions/clean_ring4_seed131_serial.json``
    for a 4-ring it provably misses).

A confirmed cycle whose transaction set never deadlocked in the
original trace is an **alternate-interleaving deadlock** — the run was
one scheduler decision away from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..core.operations import Lock, Operation, Unlock, lock_exclusive, lock_shared
from ..core.scheduler import Scheduler
from ..core.transaction import TransactionProgram
from ..errors import ReproError
from ..locking.modes import LockMode
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.interleaving import Scripted
from ..simulation.trace import TraceEvent
from ..simulation.workload import generate_workload
from ..storage.database import Database
from ..verification.cases import ReplayCase
from ..verification.faults import resolve_policy
from ..verification.regressions import load_case
from .events import AbstractLockEvent, concurrent, events_from_acquisitions, harvest_journal

#: Selectable feasibility methods and their default search depths.
METHODS = ("partial-order", "gate-lock")
DEFAULT_CYCLE_LENGTH = {"partial-order": 4, "gate-lock": 3}


def resolve_cycle_length(method: str, max_cycle_length: int | None) -> int:
    """The search depth for *method* when the caller passed ``None``."""
    if method not in METHODS:
        raise ValueError(
            f"unknown prediction method {method!r}; choose from {METHODS}"
        )
    if max_cycle_length is None:
        return DEFAULT_CYCLE_LENGTH[method]
    return max_cycle_length


class _StopHarvest(Exception):
    """Internal: the scripted schedule is exhausted; stop the replay."""


@dataclass(frozen=True)
class _Acquisition:
    """One granted lock in the replayed trace."""

    txn: str
    entity: str
    mode: LockMode
    #: Locks (entity -> mode) the transaction held when this grant landed.
    held_before: tuple[tuple[str, LockMode], ...]


@dataclass(frozen=True)
class LockEdge:
    """Lock-order arc: *txn* acquired *acquired* while holding *held*."""

    held: str
    acquired: str
    txn: str
    held_mode: LockMode
    acquired_mode: LockMode
    #: Everything *txn* held at the acquisition point (includes *held*).
    guards: tuple[tuple[str, LockMode], ...]
    #: The abstract acquisition event (vector clock carrier); ``None``
    #: only for synthetic edges built outside a trace (workload.py).
    event: AbstractLockEvent | None = None


@dataclass(frozen=True)
class PredictedDeadlock:
    """One feasible cycle of the lock-order graph, with its witness."""

    entities: tuple[str, ...]
    txns: tuple[str, ...]
    #: Scripted schedule that drives the engine into the cycle.
    witness: tuple[str, ...]
    #: Whether this transaction set already deadlocked in the recorded
    #: trace (False = reachable only in an alternate interleaving).
    observed_in_trace: bool
    #: Whether the witness replay made the engine's detector report the
    #: predicted cycle (cross-validation against the fuzzer machinery).
    confirmed: bool

    @property
    def alternate(self) -> bool:
        return self.confirmed and not self.observed_in_trace

    def describe(self) -> str:
        ring = " -> ".join(self.entities + (self.entities[0],))
        kind = (
            "alternate-interleaving"
            if not self.observed_in_trace
            else "observed"
        )
        status = "confirmed" if self.confirmed else "UNCONFIRMED"
        return (
            f"{kind} deadlock over [{ring}] via "
            f"{', '.join(self.txns)} ({status}, witness of "
            f"{len(self.witness)} steps)"
        )


@dataclass
class PredictionReport:
    """Everything predicted from one trace (replay case or journal)."""

    case_path: str
    acquisitions: int
    edges: int
    trace_deadlocks: int
    predicted: list[PredictedDeadlock] = field(default_factory=list)
    method: str = "partial-order"
    #: Boot segments the trace spanned (journals only; engine traces = 1).
    segments: int = 1

    @property
    def alternates(self) -> list[PredictedDeadlock]:
        return [p for p in self.predicted if p.alternate]

    @property
    def unconfirmed(self) -> list[PredictedDeadlock]:
        return [p for p in self.predicted if not p.confirmed]

    @property
    def ok(self) -> bool:
        """Soundness: every feasible prediction was realizable."""
        return not self.unconfirmed


class LockOrderGraph:
    """The lock-order relation harvested from one trace.

    Built from :class:`~repro.staticcheck.events.AbstractLockEvent`
    streams; each arc remembers the acquisition event that created it so
    the partial-order feasibility check can consult vector clocks.
    """

    def __init__(self, events: Iterable[AbstractLockEvent]) -> None:
        self.edges: list[LockEdge] = []
        seen: set[tuple[str, str, str]] = set()
        for event in events:
            for held, held_mode in event.held_before:
                key = (event.txn, held, event.entity)
                if key in seen:
                    continue
                seen.add(key)
                self.edges.append(
                    LockEdge(
                        held=held,
                        acquired=event.entity,
                        txn=event.txn,
                        held_mode=held_mode,
                        acquired_mode=event.mode,
                        guards=event.held_before,
                        event=event,
                    )
                )
        self._by_held: dict[str, list[LockEdge]] = {}
        for edge in self.edges:
            self._by_held.setdefault(edge.held, []).append(edge)

    @classmethod
    def from_acquisitions(
        cls, acquisitions: Iterable[_Acquisition]
    ) -> "LockOrderGraph":
        """Graph over an engine-harvested trace (one boot segment)."""
        return cls(events_from_acquisitions(acquisitions))

    def cycles(
        self,
        max_length: int = 3,
        limit: int = 200,
        method: str = "partial-order",
    ) -> list[tuple[LockEdge, ...]]:
        """Feasible cycles with one distinct transaction per arc.

        Enumerates simple cycles in the entity graph up to *max_length*
        arcs, applying *method*'s feasibility check; stops after *limit*
        candidates.
        """
        found: list[tuple[LockEdge, ...]] = []
        keys: set[tuple[tuple[str, str, str], ...]] = set()
        for start in sorted(self._by_held):
            stack: list[tuple[tuple[LockEdge, ...], str]] = [((), start)]
            while stack and len(found) < limit:
                path, at = stack.pop()
                for edge in self._by_held.get(at, ()):
                    if any(e.txn == edge.txn for e in path):
                        continue
                    if edge.acquired == start and path:
                        cycle = path + (edge,)
                        key = _canonical(cycle)
                        if key in keys:
                            continue
                        if _feasible(cycle, method=method):
                            keys.add(key)
                            found.append(cycle)
                        continue
                    if len(path) + 1 >= max_length:
                        continue
                    if edge.acquired == start or any(
                        e.held == edge.acquired for e in path
                    ):
                        continue
                    # Only walk "forward" from the lexicographically
                    # smallest entity so each cycle is found once.
                    if edge.acquired < start:
                        continue
                    stack.append((path + (edge,), edge.acquired))
        return found


def _canonical(
    cycle: tuple[LockEdge, ...]
) -> tuple[tuple[str, str, str], ...]:
    arcs = [(e.txn, e.held, e.acquired) for e in cycle]
    pivot = min(range(len(arcs)), key=lambda i: arcs[i])
    return tuple(arcs[pivot:] + arcs[:pivot])


def _feasible(
    cycle: tuple[LockEdge, ...], method: str = "partial-order"
) -> bool:
    """Feasibility of the joint blocking state under *method*.

    Each participant sits at its acquisition point, holding its guard
    set and requesting the next participant's held entity.  Both
    methods require the ring to actually block (each requested mode
    conflicts with the next holder's mode) and every pairwise guard
    intersection to be mode-compatible (an incompatible common guard
    would serialise the two acquisition points).  The partial-order
    method additionally requires the blocking acquisitions to be
    pairwise *concurrent* under the harvested happens-before order —
    two events separated by a boot-segment barrier cannot be reordered
    into a joint blocking state, however compatible their guards look.
    """
    k = len(cycle)
    for i in range(k):
        requester = cycle[i]
        holder = cycle[(i + 1) % k]
        if requester.acquired != holder.held:
            return False
        if requester.acquired_mode.compatible_with(holder.held_mode):
            return False
    for i in range(k):
        for j in range(i + 1, k):
            a = dict(cycle[i].guards)
            for entity, mode in cycle[j].guards:
                other = a.get(entity)
                if other is not None and not other.compatible_with(mode):
                    return False
            if method == "partial-order":
                ev_i, ev_j = cycle[i].event, cycle[j].event
                if (
                    ev_i is not None
                    and ev_j is not None
                    and not concurrent(ev_i, ev_j)
                ):
                    return False
    return True


# -- harvesting --------------------------------------------------------------


def _harvest(
    case: ReplayCase,
) -> tuple[list[_Acquisition], list[TraceEvent], SimulationResult | None]:
    """Replay *case*'s schedule and collect every granted acquisition."""
    db, programs = generate_workload(
        case.workload_config(), seed=case.workload_seed
    )
    scheduler = Scheduler(
        db,
        strategy=case.strategy,
        policy=resolve_policy(case.policy),
    )
    interleaving = Scripted(list(case.schedule))
    by_id = {program.txn_id: program for program in programs}
    acquisitions: list[_Acquisition] = []
    recorded: set[tuple[str, int]] = set()

    def collect(engine: SimulationEngine, _event: TraceEvent) -> None:
        for txn_id, txn in engine.scheduler.transactions.items():
            program = by_id[txn_id]
            for record in txn.lock_records:
                if not record.granted:
                    continue
                key = (txn_id, record.ordinal)
                if key in recorded:
                    continue
                recorded.add(key)
                unlocked = {
                    op.entity_name
                    for op in program.operations[: record.pc]
                    if isinstance(op, Unlock)
                }
                held = tuple(
                    (earlier.entity, earlier.mode)
                    for earlier in txn.lock_records
                    if earlier.ordinal < record.ordinal
                    and earlier.entity not in unlocked
                )
                acquisitions.append(
                    _Acquisition(
                        txn=txn_id,
                        entity=record.entity,
                        mode=record.mode,
                        held_before=held,
                    )
                )
        if interleaving.exhausted and not engine.scheduler.all_done:
            raise _StopHarvest

    engine = SimulationEngine(
        scheduler,
        interleaving,
        max_steps=len(case.schedule) + case.extra_steps,
        livelock_window=0,
        on_step=collect,
    )
    for program in programs:
        engine.add(program)
    result: SimulationResult | None = None
    try:
        result = engine.run()
    except (_StopHarvest, ReproError):
        # Planted-fault cases may abort mid-run; the acquisitions
        # gathered up to that point are still a valid partial trace.
        pass
    return acquisitions, engine.trace.deadlock_events(), result


# -- witness synthesis and confirmation --------------------------------------


def _witness_schedule(
    cycle: tuple[LockEdge, ...],
    programs: Mapping[str, TransactionProgram],
) -> tuple[str, ...] | None:
    """Schedule driving each participant to its blocking position.

    Each transaction runs alone up to (but not including) its request
    of the next participant's entity — the guard-feasibility check
    guarantees those prefixes cannot block each other — then each
    issues the fatal request in turn; the last one closes the cycle.
    """
    schedule: list[str] = []
    for edge in cycle:
        program = programs.get(edge.txn)
        if program is None:
            return None
        position = next(
            (
                index
                for index, op in enumerate(program.operations)
                if isinstance(op, Lock) and op.entity_name == edge.acquired
            ),
            None,
        )
        if position is None:
            return None
        schedule.extend([edge.txn] * position)
    schedule.extend(edge.txn for edge in cycle)
    return tuple(schedule)


def _confirm(
    case: ReplayCase, cycle: tuple[LockEdge, ...], witness: tuple[str, ...]
) -> bool:
    """Replay the witness; did the detector report the predicted cycle?"""
    predicted = frozenset(edge.txn for edge in cycle)
    witness_case = replace(
        case, schedule=list(witness), fault_plan=None
    )
    _acqs, deadlocks, _result = _harvest(witness_case)
    for event in deadlocks:
        for reported in event.cycles:
            if frozenset(reported) == predicted:
                return True
    return False


def _confirm_programs(
    programs: Mapping[str, TransactionProgram],
    witness: Sequence[str],
    predicted: frozenset[str],
    entities: Iterable[str],
    strategy: str,
    policy: str,
) -> bool:
    """Replay synthesized programs; did the detector report the cycle?

    The journal path has no :class:`ReplayCase` to re-generate a
    workload from, so confirmation runs the lock-sequence programs
    reconstructed from the journal through a fresh engine.
    """
    database = Database({entity: 0 for entity in sorted(entities)})
    scheduler = Scheduler(
        database, strategy=strategy, policy=resolve_policy(policy)
    )
    engine = SimulationEngine(
        scheduler,
        Scripted(list(witness)),
        max_steps=len(witness) + 8,
        livelock_window=0,
    )
    for program in programs.values():
        engine.add(program)
    try:
        engine.run()
    except ReproError:
        pass
    for event in engine.trace.deadlock_events():
        for reported in event.cycles:
            if frozenset(reported) == predicted:
                return True
    return False


def _sequence_program(
    txn: str, sequence: Iterable[tuple[str, LockMode]]
) -> TransactionProgram:
    """The straight-line lock program a journal recorded for *txn*."""
    operations: list[Operation] = [
        lock_exclusive(entity) if mode.is_exclusive else lock_shared(entity)
        for entity, mode in sequence
    ]
    return TransactionProgram(txn, operations)


# -- entry points ------------------------------------------------------------


def predict_case(
    case: ReplayCase,
    case_path: str = "",
    max_cycle_length: int | None = None,
    limit: int = 200,
    method: str = "partial-order",
) -> PredictionReport:
    """Predict deadlocks reachable from *case*'s workload family."""
    max_length = resolve_cycle_length(method, max_cycle_length)
    acquisitions, trace_deadlocks, _result = _harvest(case)
    graph = LockOrderGraph.from_acquisitions(acquisitions)
    observed = {
        frozenset(reported)
        for event in trace_deadlocks
        for reported in event.cycles
    }
    _db, programs = generate_workload(
        case.workload_config(), seed=case.workload_seed
    )
    by_id = {program.txn_id: program for program in programs}
    report = PredictionReport(
        case_path=case_path,
        acquisitions=len(acquisitions),
        edges=len(graph.edges),
        trace_deadlocks=len(trace_deadlocks),
        method=method,
    )
    for cycle in graph.cycles(
        max_length=max_length, limit=limit, method=method
    ):
        witness = _witness_schedule(cycle, by_id)
        if witness is None:
            continue
        txns = tuple(edge.txn for edge in cycle)
        report.predicted.append(
            PredictedDeadlock(
                entities=tuple(edge.held for edge in cycle),
                txns=txns,
                witness=witness,
                observed_in_trace=frozenset(txns) in observed,
                confirmed=_confirm(case, cycle, witness),
            )
        )
    return report


def predict_journal(
    journal: str | Path,
    max_cycle_length: int | None = None,
    limit: int = 200,
    method: str = "partial-order",
    strategy: str = "mcs",
    policy: str = "ordered-min-cost",
) -> PredictionReport:
    """Predict deadlocks from a service WAL/request journal.

    Harvests the journal's grant stream into abstract lock events
    (vector clocks spanning boot segments), enumerates feasible cycles,
    reconstructs each participant's straight-line lock program from its
    recorded sequence, and confirms every prediction by engine replay —
    the same contract as the replay-case path.
    """
    max_length = resolve_cycle_length(method, max_cycle_length)
    trace = harvest_journal(journal)
    graph = LockOrderGraph(trace.events)
    observed = set(trace.observed_deadlocks)
    programs = {
        txn: _sequence_program(txn, sequence)
        for txn, sequence in trace.lock_sequences.items()
    }
    report = PredictionReport(
        case_path=str(journal),
        acquisitions=len(trace.events),
        edges=len(graph.edges),
        trace_deadlocks=len(observed),
        method=method,
        segments=trace.segments,
    )
    for cycle in graph.cycles(
        max_length=max_length, limit=limit, method=method
    ):
        witness = _witness_schedule(cycle, programs)
        if witness is None:
            continue
        txns = tuple(edge.txn for edge in cycle)
        participants = {txn: programs[txn] for txn in txns}
        report.predicted.append(
            PredictedDeadlock(
                entities=tuple(edge.held for edge in cycle),
                txns=txns,
                witness=witness,
                observed_in_trace=frozenset(txns) in observed,
                confirmed=_confirm_programs(
                    participants,
                    witness,
                    frozenset(txns),
                    trace.entities,
                    strategy,
                    policy,
                ),
            )
        )
    return report


def predict_corpus(
    corpus: str | Path,
    max_cycle_length: int | None = None,
    limit: int = 200,
    method: str = "partial-order",
) -> list[PredictionReport]:
    """Run prediction over every regression case under *corpus*."""
    corpus = Path(corpus)
    reports: list[PredictionReport] = []
    for path in sorted(corpus.glob("*.json")):
        case, _expect = load_case(path)
        if not isinstance(case, ReplayCase):
            # Non-replay kinds (e.g. overload comparisons) carry no
            # recorded schedule to build a lock-order graph from.
            continue
        reports.append(
            predict_case(
                case,
                case_path=str(path),
                max_cycle_length=max_cycle_length,
                limit=limit,
                method=method,
            )
        )
    return reports
