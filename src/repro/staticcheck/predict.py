"""Trace-based deadlock prediction (Pillar B of the analysis layer).

One recorded execution rarely hits every deadlock its workload can
produce — the cycle only closes under the interleavings that drive each
participant into its blocking position simultaneously.  But a *single*
trace already reveals the ingredient that makes those interleavings
dangerous: the lock-order relation.  Following the lock-graph school of
dynamic deadlock prediction (Goodlock and its partial-order
refinements), this module

1. **replays** a recorded :class:`~repro.verification.cases.ReplayCase`
   through the real engine and harvests every lock acquisition together
   with the set of locks the acquiring transaction already held;
2. builds the **lock-order graph** — an arc ``e1 -> e2`` whenever some
   transaction acquired ``e2`` while holding ``e1`` — and enumerates
   its cycles with one transaction per arc;
3. applies a **partial-order feasibility check**: a cycle is reported
   only if the participating acquisition points are mutually reachable
   in *some* interleaving — no two participants held a common guard
   lock in incompatible modes at their acquisition points (a shared
   gate serialises them and makes the cycle a false positive), and
   each waiter's requested mode actually conflicts with the next
   holder's mode;
4. **cross-validates** every feasible cycle against the engine itself:
   a witness schedule is synthesized (run each participant up to its
   blocking position, then let each issue its fatal request) and
   replayed; the prediction counts as *confirmed* only if the engine's
   own detector reports the predicted cycle.

A confirmed cycle whose transaction set never deadlocked in the
original trace is an **alternate-interleaving deadlock** — the run was
one scheduler decision away from it.  ``repro lint --predict`` runs
this over the regression corpus and fails if any feasible prediction
cannot be realized (that would mean the feasibility check is unsound).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Mapping

from ..core.operations import Lock, Unlock
from ..core.scheduler import Scheduler
from ..core.transaction import TransactionProgram
from ..errors import ReproError
from ..locking.modes import LockMode
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.interleaving import Scripted
from ..simulation.trace import TraceEvent
from ..simulation.workload import generate_workload
from ..verification.cases import ReplayCase
from ..verification.faults import resolve_policy
from ..verification.regressions import load_case


class _StopHarvest(Exception):
    """Internal: the scripted schedule is exhausted; stop the replay."""


@dataclass(frozen=True)
class _Acquisition:
    """One granted lock in the replayed trace."""

    txn: str
    entity: str
    mode: LockMode
    #: Locks (entity -> mode) the transaction held when this grant landed.
    held_before: tuple[tuple[str, LockMode], ...]


@dataclass(frozen=True)
class LockEdge:
    """Lock-order arc: *txn* acquired *acquired* while holding *held*."""

    held: str
    acquired: str
    txn: str
    held_mode: LockMode
    acquired_mode: LockMode
    #: Everything *txn* held at the acquisition point (includes *held*).
    guards: tuple[tuple[str, LockMode], ...]


@dataclass(frozen=True)
class PredictedDeadlock:
    """One feasible cycle of the lock-order graph, with its witness."""

    entities: tuple[str, ...]
    txns: tuple[str, ...]
    #: Scripted schedule that drives the engine into the cycle.
    witness: tuple[str, ...]
    #: Whether this transaction set already deadlocked in the recorded
    #: trace (False = reachable only in an alternate interleaving).
    observed_in_trace: bool
    #: Whether the witness replay made the engine's detector report the
    #: predicted cycle (cross-validation against the fuzzer machinery).
    confirmed: bool

    @property
    def alternate(self) -> bool:
        return self.confirmed and not self.observed_in_trace

    def describe(self) -> str:
        ring = " -> ".join(self.entities + (self.entities[0],))
        kind = (
            "alternate-interleaving"
            if not self.observed_in_trace
            else "observed"
        )
        status = "confirmed" if self.confirmed else "UNCONFIRMED"
        return (
            f"{kind} deadlock over [{ring}] via "
            f"{', '.join(self.txns)} ({status}, witness of "
            f"{len(self.witness)} steps)"
        )


@dataclass
class PredictionReport:
    """Everything predicted from one replayed case."""

    case_path: str
    acquisitions: int
    edges: int
    trace_deadlocks: int
    predicted: list[PredictedDeadlock] = field(default_factory=list)

    @property
    def alternates(self) -> list[PredictedDeadlock]:
        return [p for p in self.predicted if p.alternate]

    @property
    def unconfirmed(self) -> list[PredictedDeadlock]:
        return [p for p in self.predicted if not p.confirmed]

    @property
    def ok(self) -> bool:
        """Soundness: every feasible prediction was realizable."""
        return not self.unconfirmed


class LockOrderGraph:
    """The lock-order relation harvested from one trace."""

    def __init__(self, acquisitions: Iterable[_Acquisition]) -> None:
        self.edges: list[LockEdge] = []
        seen: set[tuple[str, str, str]] = set()
        for acq in acquisitions:
            for held, held_mode in acq.held_before:
                key = (acq.txn, held, acq.entity)
                if key in seen:
                    continue
                seen.add(key)
                self.edges.append(
                    LockEdge(
                        held=held,
                        acquired=acq.entity,
                        txn=acq.txn,
                        held_mode=held_mode,
                        acquired_mode=acq.mode,
                        guards=acq.held_before,
                    )
                )
        self._by_held: dict[str, list[LockEdge]] = {}
        for edge in self.edges:
            self._by_held.setdefault(edge.held, []).append(edge)

    def cycles(
        self, max_length: int = 3, limit: int = 200
    ) -> list[tuple[LockEdge, ...]]:
        """Feasible cycles with one distinct transaction per arc.

        Enumerates simple cycles in the entity graph up to *max_length*
        arcs, applying the mode-conflict and guard (partial-order)
        feasibility checks; stops after *limit* candidates.
        """
        found: list[tuple[LockEdge, ...]] = []
        keys: set[tuple[tuple[str, str, str], ...]] = set()
        for start in sorted(self._by_held):
            stack: list[tuple[tuple[LockEdge, ...], str]] = [((), start)]
            while stack and len(found) < limit:
                path, at = stack.pop()
                for edge in self._by_held.get(at, ()):
                    if any(e.txn == edge.txn for e in path):
                        continue
                    if edge.acquired == start and path:
                        cycle = path + (edge,)
                        key = _canonical(cycle)
                        if key in keys:
                            continue
                        if _feasible(cycle):
                            keys.add(key)
                            found.append(cycle)
                        continue
                    if len(path) + 1 >= max_length:
                        continue
                    if edge.acquired == start or any(
                        e.held == edge.acquired for e in path
                    ):
                        continue
                    # Only walk "forward" from the lexicographically
                    # smallest entity so each cycle is found once.
                    if edge.acquired < start:
                        continue
                    stack.append((path + (edge,), edge.acquired))
        return found


def _canonical(
    cycle: tuple[LockEdge, ...]
) -> tuple[tuple[str, str, str], ...]:
    arcs = [(e.txn, e.held, e.acquired) for e in cycle]
    pivot = min(range(len(arcs)), key=lambda i: arcs[i])
    return tuple(arcs[pivot:] + arcs[:pivot])


def _feasible(cycle: tuple[LockEdge, ...]) -> bool:
    """Partial-order feasibility of the joint blocking state.

    Each participant sits at its acquisition point, holding its guard
    set and requesting the next participant's held entity.  The joint
    state is reachable iff every pairwise guard intersection is
    mode-compatible (an incompatible common guard would serialise the
    two acquisition points); the cycle then actually blocks iff each
    requested mode conflicts with the next holder's mode.
    """
    k = len(cycle)
    for i in range(k):
        requester = cycle[i]
        holder = cycle[(i + 1) % k]
        if requester.acquired != holder.held:
            return False
        if requester.acquired_mode.compatible_with(holder.held_mode):
            return False
    for i in range(k):
        for j in range(i + 1, k):
            a = dict(cycle[i].guards)
            for entity, mode in cycle[j].guards:
                other = a.get(entity)
                if other is not None and not other.compatible_with(mode):
                    return False
    return True


# -- harvesting --------------------------------------------------------------


def _harvest(
    case: ReplayCase,
) -> tuple[list[_Acquisition], list[TraceEvent], SimulationResult | None]:
    """Replay *case*'s schedule and collect every granted acquisition."""
    db, programs = generate_workload(
        case.workload_config(), seed=case.workload_seed
    )
    scheduler = Scheduler(
        db,
        strategy=case.strategy,
        policy=resolve_policy(case.policy),
    )
    interleaving = Scripted(list(case.schedule))
    by_id = {program.txn_id: program for program in programs}
    acquisitions: list[_Acquisition] = []
    recorded: set[tuple[str, int]] = set()

    def collect(engine: SimulationEngine, _event: TraceEvent) -> None:
        for txn_id, txn in engine.scheduler.transactions.items():
            program = by_id[txn_id]
            for record in txn.lock_records:
                if not record.granted:
                    continue
                key = (txn_id, record.ordinal)
                if key in recorded:
                    continue
                recorded.add(key)
                unlocked = {
                    op.entity_name
                    for op in program.operations[: record.pc]
                    if isinstance(op, Unlock)
                }
                held = tuple(
                    (earlier.entity, earlier.mode)
                    for earlier in txn.lock_records
                    if earlier.ordinal < record.ordinal
                    and earlier.entity not in unlocked
                )
                acquisitions.append(
                    _Acquisition(
                        txn=txn_id,
                        entity=record.entity,
                        mode=record.mode,
                        held_before=held,
                    )
                )
        if interleaving.exhausted and not engine.scheduler.all_done:
            raise _StopHarvest

    engine = SimulationEngine(
        scheduler,
        interleaving,
        max_steps=len(case.schedule) + case.extra_steps,
        livelock_window=0,
        on_step=collect,
    )
    for program in programs:
        engine.add(program)
    result: SimulationResult | None = None
    try:
        result = engine.run()
    except (_StopHarvest, ReproError):
        # Planted-fault cases may abort mid-run; the acquisitions
        # gathered up to that point are still a valid partial trace.
        pass
    return acquisitions, engine.trace.deadlock_events(), result


# -- witness synthesis and confirmation --------------------------------------


def _witness_schedule(
    cycle: tuple[LockEdge, ...],
    programs: Mapping[str, TransactionProgram],
) -> tuple[str, ...] | None:
    """Schedule driving each participant to its blocking position.

    Each transaction runs alone up to (but not including) its request
    of the next participant's entity — the guard-feasibility check
    guarantees those prefixes cannot block each other — then each
    issues the fatal request in turn; the last one closes the cycle.
    """
    schedule: list[str] = []
    for edge in cycle:
        program = programs.get(edge.txn)
        if program is None:
            return None
        position = next(
            (
                index
                for index, op in enumerate(program.operations)
                if isinstance(op, Lock) and op.entity_name == edge.acquired
            ),
            None,
        )
        if position is None:
            return None
        schedule.extend([edge.txn] * position)
    schedule.extend(edge.txn for edge in cycle)
    return tuple(schedule)


def _confirm(
    case: ReplayCase, cycle: tuple[LockEdge, ...], witness: tuple[str, ...]
) -> bool:
    """Replay the witness; did the detector report the predicted cycle?"""
    predicted = frozenset(edge.txn for edge in cycle)
    witness_case = replace(
        case, schedule=list(witness), fault_plan=None
    )
    _acqs, deadlocks, _result = _harvest(witness_case)
    for event in deadlocks:
        for reported in event.cycles:
            if frozenset(reported) == predicted:
                return True
    return False


# -- entry points ------------------------------------------------------------


def predict_case(
    case: ReplayCase,
    case_path: str = "",
    max_cycle_length: int = 3,
    limit: int = 200,
) -> PredictionReport:
    """Predict deadlocks reachable from *case*'s workload family."""
    acquisitions, trace_deadlocks, _result = _harvest(case)
    graph = LockOrderGraph(acquisitions)
    observed = {
        frozenset(reported)
        for event in trace_deadlocks
        for reported in event.cycles
    }
    _db, programs = generate_workload(
        case.workload_config(), seed=case.workload_seed
    )
    by_id = {program.txn_id: program for program in programs}
    report = PredictionReport(
        case_path=case_path,
        acquisitions=len(acquisitions),
        edges=len(graph.edges),
        trace_deadlocks=len(trace_deadlocks),
    )
    for cycle in graph.cycles(max_length=max_cycle_length, limit=limit):
        witness = _witness_schedule(cycle, by_id)
        if witness is None:
            continue
        txns = tuple(edge.txn for edge in cycle)
        report.predicted.append(
            PredictedDeadlock(
                entities=tuple(edge.held for edge in cycle),
                txns=txns,
                witness=witness,
                observed_in_trace=frozenset(txns) in observed,
                confirmed=_confirm(case, cycle, witness),
            )
        )
    return report


def predict_corpus(
    corpus: str | Path,
    max_cycle_length: int = 3,
    limit: int = 200,
) -> list[PredictionReport]:
    """Run prediction over every regression case under *corpus*."""
    corpus = Path(corpus)
    reports: list[PredictionReport] = []
    for path in sorted(corpus.glob("*.json")):
        case, _expect = load_case(path)
        if not isinstance(case, ReplayCase):
            # Non-replay kinds (e.g. overload comparisons) carry no
            # recorded schedule to build a lock-order graph from.
            continue
        reports.append(
            predict_case(
                case,
                case_path=str(path),
                max_cycle_length=max_cycle_length,
                limit=limit,
            )
        )
    return reports
