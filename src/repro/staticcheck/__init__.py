"""Static analysis for the reproduction's own guarantees.

The paper's theorems are only as good as the code discipline they rest
on: Theorem 1's forest structure assumes every lock acquisition goes
through the two-phase :class:`~repro.locking.manager.LockManager`, and
Theorem 2's livelock-freedom — together with the verification and chaos
subsystems — assumes runs are bit-for-bit reproducible from a seed.
Neither assumption used to be checked; this package checks both.

Two pillars:

* :mod:`~repro.staticcheck.framework` plus
  :mod:`~repro.staticcheck.checkers` — a small AST lint framework with
  project-specific rules (RR001 nondeterminism hazards, RR002 lock-API
  discipline, RR003 registration completeness, RR004 seeded-Random
  plumbing, RR005 metrics-mutation discipline), exposed as
  ``repro lint``;
* :mod:`~repro.staticcheck.predict` — trace-based deadlock prediction:
  a lock-order graph built from one recorded execution, cycles that are
  feasible in *alternate* interleavings, each cross-validated by
  replaying a synthesized witness schedule through the real engine
  (``repro lint --predict``).

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and rationale.
"""

from .checkers import all_rules, default_checkers
from .framework import (
    Checker,
    Finding,
    LintReport,
    Module,
    load_module,
    run_lint,
)
from .predict import (
    LockEdge,
    LockOrderGraph,
    PredictedDeadlock,
    PredictionReport,
    predict_case,
    predict_corpus,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "LockEdge",
    "LockOrderGraph",
    "Module",
    "PredictedDeadlock",
    "PredictionReport",
    "all_rules",
    "default_checkers",
    "load_module",
    "predict_case",
    "predict_corpus",
    "run_lint",
]
