"""Static analysis for the reproduction's own guarantees.

The paper's theorems are only as good as the code discipline they rest
on: Theorem 1's forest structure assumes every lock acquisition goes
through the two-phase :class:`~repro.locking.manager.LockManager`, and
Theorem 2's livelock-freedom — together with the verification and chaos
subsystems — assumes runs are bit-for-bit reproducible from a seed.
Neither assumption used to be checked; this package checks both.

Two pillars:

* :mod:`~repro.staticcheck.framework` plus
  :mod:`~repro.staticcheck.checkers` — a small AST lint framework with
  project-specific rules (RR001 nondeterminism hazards, RR002 lock-API
  discipline, RR003 registration completeness, RR004 seeded-Random
  plumbing, RR005 metrics-mutation discipline), exposed as
  ``repro lint``;
* :mod:`~repro.staticcheck.predict` (with
  :mod:`~repro.staticcheck.events`) — sound partial-order deadlock
  prediction: abstract lock events with vector clocks harvested from
  engine replays, fuzz corpora, and service journals; a lock-order
  graph whose feasible cycles are each cross-validated by replaying a
  synthesized witness schedule through the real engine
  (``repro lint --predict``);
* :mod:`~repro.staticcheck.workload` — static workload risk analysis:
  transaction templates scored for lock-order inversion structure
  without executing anything, feeding ``repro advise`` and the
  ``predictive`` admission policy.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and rationale.
"""

from .checkers import all_rules, default_checkers
from .events import (
    AbstractLockEvent,
    JournalTrace,
    concurrent,
    happens_before,
    harvest_journal,
)
from .framework import (
    Checker,
    Finding,
    LintReport,
    Module,
    load_module,
    run_lint,
)
from .predict import (
    METHODS,
    LockEdge,
    LockOrderGraph,
    PredictedDeadlock,
    PredictionReport,
    predict_case,
    predict_corpus,
    predict_journal,
)
from .workload import (
    RiskReport,
    TransactionTemplate,
    WorkloadClass,
    analyze_classes,
    analyze_config,
    analyze_journal,
    analyze_programs,
    analyze_sequences,
)

__all__ = [
    "METHODS",
    "AbstractLockEvent",
    "Checker",
    "Finding",
    "JournalTrace",
    "LintReport",
    "LockEdge",
    "LockOrderGraph",
    "Module",
    "PredictedDeadlock",
    "PredictionReport",
    "RiskReport",
    "TransactionTemplate",
    "WorkloadClass",
    "all_rules",
    "analyze_classes",
    "analyze_config",
    "analyze_journal",
    "analyze_programs",
    "analyze_sequences",
    "concurrent",
    "default_checkers",
    "happens_before",
    "harvest_journal",
    "load_module",
    "predict_case",
    "predict_corpus",
    "predict_journal",
    "run_lint",
]
