"""RR006 — no ``await`` while a lock-table mutation is open.

The service layer keeps the paper's machinery sound under concurrency
by construction: :class:`~repro.service.core.ServiceCore` and the lock
manager underneath it are synchronous critical sections, and the async
transport only ever calls them *between* awaits.  Journal append, table
mutation, and reply delivery therefore happen atomically with respect
to the event loop — no other connection's coroutine can observe a
half-applied mutation, which is what makes crash replay and the
differential oracle exact.

An ``async def`` that mutates the lock table (or drives the core's
``handle``/``tick``) and *then* awaits breaks that discipline: the
coroutine yields while its mutation's consequences — the reply, the
journal ordering other handlers will replay against — are still open,
and another connection interleaves into the gap.  The bug is invisible
under a single client and nondeterministic under several, so it is
checked here instead of at runtime.

The rule fires on any ``await`` that occurs lexically after a mutating
call inside the same ``async def``.  The fix is a shape change, not a
waiver: hoist the awaits (reads, sleeps) above the mutation, or push
the mutation into a synchronous helper called once, last.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..framework import Checker, Finding, Module

#: Calls that open a lock-table / core mutation: the LockTable's and
#: LockManager's mutating surface plus the service core's entry points.
_MUTATING_CALLS = {
    "request",
    "release",
    "release_all",
    "cancel_wait",
    "lock",
    "unlock",
    "finish",
    "handle",
    "tick",
    "rollback_to",
}


def _mutating_call(node: ast.AST) -> str | None:
    """The mutating-API name *node* invokes, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _MUTATING_CALLS:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _MUTATING_CALLS:
        return func.id
    return None


class AwaitDisciplineChecker(Checker):
    rule = "RR006"
    title = "await while a lock-table mutation is open"
    severity = "warning"

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            findings.extend(self._check_coroutine(module, node))
        return findings

    def _check_coroutine(
        self, module: Module, coroutine: ast.AsyncFunctionDef
    ) -> Iterable[Finding]:
        """Awaits after a mutating call, in lexical order.

        Nested function definitions are opaque scopes: a sync helper
        cannot await, and a nested ``async def`` is its own coroutine
        (``ast.walk`` over the module visits it separately).
        """
        events: list[tuple[int, int, str, str]] = []
        stack: list[ast.AST] = list(ast.iter_child_nodes(coroutine))
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            name = _mutating_call(node)
            if name is not None:
                events.append((node.lineno, node.col_offset, "mutate", name))
            if isinstance(node, ast.Await):
                events.append((node.lineno, node.col_offset, "await", ""))
            stack.extend(ast.iter_child_nodes(node))
        open_mutation: tuple[int, str] | None = None
        for lineno, col, kind, name in sorted(events):
            if kind == "mutate":
                if open_mutation is None:
                    open_mutation = (lineno, name)
            elif open_mutation is not None:
                at, call = open_mutation
                yield Finding(
                    rule=self.rule,
                    message=(
                        f"await while the lock-table mutation opened by "
                        f"{call}(...) at line {at} is still in flight; "
                        f"finish the mutation and its reply before "
                        f"yielding to the event loop"
                    ),
                    path=str(module.path),
                    line=lineno,
                    col=col,
                    severity=self.severity,
                )
