"""RR003 — registration completeness.

The engine is assembled by name: rollback strategies through
:func:`repro.core.rollback.make_strategy`, victim policies through
:func:`repro.core.victim.make_policy` (with the deliberately-broken
fault policies in :data:`repro.verification.faults.FAULT_POLICIES`),
and invariant oracles through :data:`repro.verification.oracles._ORACLE_TYPES`
(which also defines the fuzzer's default "all" suite).  A concrete
subclass that never makes it into its registry is invisible to the CLI,
the differential fuzzer, and the chaos sweeps — the worst kind of drift
because everything still passes, just with one implementation silently
untested.

This is a whole-project rule: it collects every concrete subclass of
``RollbackStrategy`` / ``VictimPolicy`` / ``Oracle`` across the linted
tree and demands each is referenced from at least one registry site.  A
kind whose registries are absent from the linted tree is skipped, so
linting a subtree does not produce spurious findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..framework import Checker, Finding, Module

#: Root class -> the functions / module-level constants that count as its
#: registry.  A concrete subclass must be referenced by name inside one.
_KINDS: dict[str, tuple[str, ...]] = {
    "RollbackStrategy": ("make_strategy", "_strategy_registry"),
    "VictimPolicy": (
        "make_policy",
        "_POLICY_REGISTRY",
        "resolve_policy",
        "FAULT_POLICIES",
    ),
    "Oracle": ("make_oracles", "_ORACLE_TYPES", "oracle_names"),
}


@dataclass
class _ClassInfo:
    name: str
    module: Module
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    abstract: bool = False


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(node: ast.ClassDef) -> bool:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in item.decorator_list:
                name = (
                    decorator.attr
                    if isinstance(decorator, ast.Attribute)
                    else decorator.id
                    if isinstance(decorator, ast.Name)
                    else ""
                )
                if name == "abstractmethod":
                    return True
    return False


class RegistrationChecker(Checker):
    rule = "RR003"
    title = "registration completeness"

    def check_project(
        self, modules: Sequence[Module]
    ) -> Iterable[Finding]:
        classes: dict[str, _ClassInfo] = {}
        registry_refs: dict[str, set[str]] = {site: set() for sites in
                                              _KINDS.values()
                                              for site in sites}
        registry_present: set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = _ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=_base_names(node),
                        abstract=_is_abstract(node),
                    )
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in registry_refs
                ):
                    registry_present.add(node.name)
                    registry_refs[node.name] |= _names_in(node)
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in registry_refs
                            and node.value is not None
                        ):
                            registry_present.add(target.id)
                            registry_refs[target.id] |= _names_in(node.value)

        findings: list[Finding] = []
        for info in classes.values():
            kind = self._kind_of(info, classes)
            if kind is None or info.name.startswith("_"):
                continue
            if info.abstract:
                continue
            sites = [s for s in _KINDS[kind] if s in registry_present]
            if not sites:
                continue  # registries not part of the linted tree
            referenced = any(
                info.name in registry_refs[site] for site in sites
            )
            if not referenced:
                findings.append(
                    self.finding(
                        info.module, info.node,
                        f"{kind} subclass {info.name!r} is not referenced "
                        f"from any registry ({', '.join(_KINDS[kind])}); "
                        f"the CLI and fuzzer cannot reach it",
                    )
                )
        return findings

    @staticmethod
    def _kind_of(
        info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> str | None:
        """The root kind *info* descends from, following project bases."""
        seen: set[str] = set()
        frontier = list(info.bases)
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            if base in _KINDS:
                return base
            parent = classes.get(base)
            if parent is not None:
                frontier.extend(parent.bases)
        return None


def _names_in(node: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }
