"""RR004 — seeded-Random plumbing.

RR001 bans the module-global generator; this rule polices the private
generators that replace it.  A ``random.Random()`` constructed without
an argument is seeded from the OS — deterministic code built on top of
it is a contradiction.  And a generator seeded from something the
caller never passed in (a global, an ambient read) cannot be replayed
either.  So every ``random.Random(...)`` construction must be fed:

* a literal constant (a pinned seed is reproducible by definition), or
* an expression that mentions a ``seed``/``rng``-named value, or
* a parameter of the enclosing function/method — the caller then owns
  the seed and public entry points stay replayable end to end
  (``generate_workload(config, seed=...)``,
  ``RandomInterleaving(seed=..., rng=...)`` are the house pattern).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..framework import Checker, Finding, Module

_SEEDY_FRAGMENTS = ("seed", "rng", "random")


def _is_random_ctor(node: ast.Call, from_imports: set[str]) -> bool:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
        and func.attr == "Random"
    ):
        return True
    return (
        isinstance(func, ast.Name)
        and func.id == "Random"
        and "Random" in from_imports
    )


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    every = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return {a.arg for a in every}


class SeededRandomChecker(Checker):
    rule = "RR004"
    title = "seeded-Random plumbing"

    def check_module(self, module: Module) -> Iterable[Finding]:
        from_imports = {
            alias.asname or alias.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "random"
            for alias in node.names
        }
        findings: list[Finding] = []
        self._visit(
            module, module.tree.body, params=set(),
            from_imports=from_imports, findings=findings,
        )
        return findings

    def _visit(
        self,
        module: Module,
        body: Iterable[ast.stmt],
        params: set[str],
        from_imports: set[str],
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(
                    module, stmt.body, params | _param_names(stmt),
                    from_imports, findings,
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                self._visit(
                    module, stmt.body, params, from_imports, findings
                )
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_random_ctor(
                    node, from_imports
                ):
                    findings.extend(
                        self._check_ctor(module, node, params)
                    )

    def _check_ctor(
        self, module: Module, node: ast.Call, params: set[str]
    ) -> Iterable[Finding]:
        if not node.args and not node.keywords:
            yield self.finding(
                module, node,
                "random.Random() without a seed draws entropy from the "
                "OS; pass an explicit seed (or accept one from the "
                "caller)",
            )
            return
        arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
        for expr in arg_exprs:
            if isinstance(expr, ast.Constant):
                return
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name):
                    lowered = sub.id.lower()
                    if sub.id in params or any(
                        fragment in lowered
                        for fragment in _SEEDY_FRAGMENTS
                    ):
                        return
                if isinstance(sub, ast.Attribute):
                    lowered = sub.attr.lower()
                    if any(
                        fragment in lowered
                        for fragment in _SEEDY_FRAGMENTS
                    ):
                        return
        yield self.finding(
            module, node,
            "random.Random(...) seeded from a value the caller never "
            "passed in; plumb an explicit seed or rng parameter so the "
            "run stays replayable",
        )
