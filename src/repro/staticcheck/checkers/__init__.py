"""The project-specific lint rules.

===== =============================================================
Rule  Checks
===== =============================================================
RR001 Nondeterminism hazards: shared global ``random``, wall-clock
      reads, ``id()``-keyed ordering, unordered set/dict iteration
      feeding ordering-sensitive sinks, ``os.environ`` reads.
RR002 Lock-API discipline: no private lock-table internals and no
      mutating table calls outside :mod:`repro.locking`.
RR003 Registration completeness: every concrete strategy / victim
      policy / oracle class is reachable from its factory/registry.
RR004 Seeded-Random plumbing: every ``random.Random`` construction
      is fed an explicit seed or generator the caller controls.
RR005 Metrics discipline: counters mutate only through
      ``Metrics.bump`` so the aggregate counters and the event bus
      cannot diverge.
RR006 Await discipline: an ``async def`` must not ``await`` after
      opening a lock-table / service-core mutation — the event loop
      would interleave another handler into the half-applied state.
===== =============================================================

``default_checkers()`` is the suite ``repro lint`` runs; the rules'
rationale lives in ``docs/STATIC_ANALYSIS.md``.
"""

from ..framework import Checker
from .rr001_determinism import NondeterminismChecker
from .rr002_locks import LockDisciplineChecker
from .rr003_registration import RegistrationChecker
from .rr004_seeding import SeededRandomChecker
from .rr005_metrics import MetricsDisciplineChecker
from .rr006_await import AwaitDisciplineChecker

__all__ = [
    "AwaitDisciplineChecker",
    "LockDisciplineChecker",
    "MetricsDisciplineChecker",
    "NondeterminismChecker",
    "RegistrationChecker",
    "SeededRandomChecker",
    "all_rules",
    "default_checkers",
]


def default_checkers() -> list[Checker]:
    """One instance of every rule, in rule order."""
    return [
        NondeterminismChecker(),
        LockDisciplineChecker(),
        RegistrationChecker(),
        SeededRandomChecker(),
        MetricsDisciplineChecker(),
        AwaitDisciplineChecker(),
    ]


def all_rules() -> list[tuple[str, str]]:
    """``(rule, title)`` pairs for the catalogue and ``--list-rules``."""
    return [(c.rule, c.title) for c in default_checkers()]
