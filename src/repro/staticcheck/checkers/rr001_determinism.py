"""RR001 — nondeterminism hazards.

Every subsystem of this repo promises bit-for-bit reproducibility from a
seed: the fuzzer replays failures from a schedule, the chaos engine
derives a whole fault campaign from one integer, and trace fingerprints
assert step-for-step equality across runs.  One stray read of ambient
state breaks all of it silently.  This rule flags the ambient-state
reads that have actually bitten seeded systems:

* calls through the module-global ``random`` generator (shared,
  order-sensitive state; any library call can perturb it);
* wall-clock reads (``time.time``/``time_ns``, ``datetime.now`` and
  friends) — ``time.monotonic`` for *budgets* is acceptable and is the
  canonical noqa site;
* ordering keyed on ``id()`` (CPython allocation addresses vary run to
  run);
* direct iteration over a set expression feeding an ordering-sensitive
  sink — ``for x in set(...)``, ``list({...})``, ``next(iter(set(..)))``
  — string hashes are randomized per process (PYTHONHASHSEED), so the
  order differs between runs; wrap in ``sorted(...)``;
* ``os.environ`` / ``os.getenv`` reads — configuration must arrive
  through explicit parameters so a replay does not depend on the
  caller's shell.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..framework import Checker, Finding, Module

_WALLCLOCK_TIME = {"time", "time_ns"}
_WALLCLOCK_DATETIME = {"now", "utcnow", "today"}
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "iter", "enumerate"}


def _is_set_expr(node: ast.expr) -> bool:
    """Conservatively: does *node* evaluate to a set (syntactically)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_id_key(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        return any(
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "id"
            for call in ast.walk(node.body)
        )
    return False


class NondeterminismChecker(Checker):
    rule = "RR001"
    title = "nondeterminism hazards"

    def check_module(self, module: Module) -> Iterable[Finding]:
        imported = _imported_modules(module.tree)
        findings: list[Finding] = []
        findings.extend(self._check_imports(module))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, imported))
            elif isinstance(node, ast.Attribute):
                findings.extend(
                    self._check_environ(module, node, imported)
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(self._check_iteration(module, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for generator in node.generators:
                    findings.extend(
                        self._check_iteration(module, generator.iter)
                    )
        return findings

    # -- sub-rules ---------------------------------------------------------

    def _check_imports(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "random"
            ):
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name != "Random"
                ]
                if bad:
                    yield self.finding(
                        module, node,
                        f"importing {', '.join(bad)} from random binds the "
                        f"shared global generator; import random.Random and "
                        f"thread an instance instead",
                    )

    def _check_call(
        self, module: Module, node: ast.Call, imported: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        # random.X(...) through the module-global generator.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and "random" in imported
            and func.attr != "Random"
        ):
            yield self.finding(
                module, node,
                f"random.{func.attr}() draws from the shared global "
                f"generator; use an explicit random.Random instance",
            )
        # time.time()/time.time_ns()
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and "time" in imported
            and func.attr in _WALLCLOCK_TIME
        ):
            yield self.finding(
                module, node,
                f"time.{func.attr}() reads the wall clock; results become "
                f"irreproducible (pass timestamps or counters explicitly)",
            )
        # datetime.now()/utcnow()/today() in any spelling that mentions
        # the datetime module or class.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WALLCLOCK_DATETIME
            and _mentions_datetime(func.value)
            and "datetime" in imported
        ):
            yield self.finding(
                module, node,
                f"datetime {func.attr}() reads the wall clock; replays "
                f"cannot reproduce it",
            )
        # os.getenv(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and "os" in imported
            and func.attr == "getenv"
        ):
            yield self.finding(
                module, node,
                "os.getenv() makes behaviour depend on the caller's shell; "
                "accept configuration through explicit parameters",
            )
        # sorted(..., key=id) / .sort(key=id) / min/max(key=id)
        for keyword in node.keywords:
            if keyword.arg == "key" and _is_id_key(keyword.value):
                yield self.finding(
                    module, node,
                    "ordering keyed on id() follows allocation addresses, "
                    "which differ between runs; key on stable identity "
                    "(name, ordinal) instead",
                )
        # list(set(...)), tuple({...}), iter(set(...)), enumerate(set(..))
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_WRAPPERS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield self.finding(
                module, node,
                f"{func.id}() over a set materialises hash order, which is "
                f"randomized per process; wrap the set in sorted(...)",
            )

    def _check_environ(
        self, module: Module, node: ast.Attribute, imported: set[str]
    ) -> Iterator[Finding]:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and "os" in imported
            and node.attr == "environ"
        ):
            yield self.finding(
                module, node,
                "os.environ read makes behaviour depend on the caller's "
                "shell; accept configuration through explicit parameters",
            )

    def _check_iteration(
        self, module: Module, iter_node: ast.expr
    ) -> Iterator[Finding]:
        if _is_set_expr(iter_node):
            yield self.finding(
                module, iter_node,
                "iterating a set yields hash order, which is randomized "
                "per process; iterate sorted(...) so downstream ordering "
                "is stable",
            )


def _imported_modules(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            # ``from datetime import datetime`` also puts the wall-clock
            # API in scope under the module's name.
            for alias in node.names:
                if alias.name == node.module:
                    names.add(alias.asname or alias.name)
    return names


def _mentions_datetime(node: ast.expr) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "datetime"
        for sub in ast.walk(node)
    )
