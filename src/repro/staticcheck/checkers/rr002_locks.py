"""RR002 — lock-API discipline.

Theorem 1 (the deadlock-free concurrency graph is a forest) and the
detector's "every new cycle passes through the requester" shortcut are
properties of the *protocol*, not the data structure: they hold because
every acquisition and release flows through
:class:`~repro.locking.manager.LockManager`, which enforces two-phase
order and never-rollback-after-unlock.  Code that pokes the lock table
directly sidesteps those guards, and nothing at runtime would notice
until an oracle fires on a workload that happens to hit the hole.

Outside :mod:`repro.locking` this rule therefore forbids:

* touching the table's/manager's private state (``_locks``,
  ``_held_by_txn``, ``_waiting``, ``_seq``, ``_grant``, ``_drain``,
  ``_shrinking``, ``_declared_last_lock``) on any object other than
  ``self`` — reading it couples callers to the representation, writing
  it corrupts the protocol;
* calling the table's mutating API through a ``.table`` attribute
  (``manager.table.request(...)`` bypasses two-phase enforcement;
  read-only inspection like ``manager.table.holders(...)`` is fine);
* constructing a bare :class:`~repro.locking.table.LockTable` — other
  layers must own a :class:`LockManager` so the protocol checks exist.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..framework import Checker, Finding, Module

_LOCK_PACKAGE = "repro.locking"
_PRIVATE_STATE = {
    "_locks",
    "_held_by_txn",
    "_waiting",
    "_seq",
    "_grant",
    "_drain",
    "_shrinking",
    "_declared_last_lock",
}
_MUTATING_TABLE_API = {"request", "release", "release_all", "cancel_wait"}


class LockDisciplineChecker(Checker):
    rule = "RR002"
    title = "lock-API discipline"

    def check_module(self, module: Module) -> Iterable[Finding]:
        if module.in_package(_LOCK_PACKAGE):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                if node.attr in _PRIVATE_STATE and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                ):
                    findings.append(
                        self.finding(
                            module, node,
                            f"access to lock-table internal "
                            f"{node.attr!r} outside repro.locking; use "
                            f"the LockManager/LockTable public API",
                        )
                    )
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_TABLE_API
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "table"
                ):
                    findings.append(
                        self.finding(
                            module, node,
                            f".table.{func.attr}(...) mutates the lock "
                            f"table behind the LockManager's back, "
                            f"bypassing two-phase enforcement; call the "
                            f"manager's lock/unlock/finish API",
                        )
                    )
                if (
                    isinstance(func, ast.Name)
                    and func.id == "LockTable"
                ):
                    findings.append(
                        self.finding(
                            module, node,
                            "constructing a bare LockTable outside "
                            "repro.locking skips protocol enforcement; "
                            "own a LockManager instead",
                        )
                    )
        return findings
