"""RR005 — metrics flow through the sanctioned mutation API.

The observability layer's contract is that counters and the event bus
tell the same story: every counter move corresponds to a published
event, and both derive from one code path.  That only holds if the
*single* sanctioned mutation —
:meth:`repro.core.metrics.Metrics.bump` — is the way counters change;
a stray ``scheduler.metrics.rollbacks += 1`` silently diverges the
aggregate counters from the event stream, and nothing at runtime
notices (the trace fingerprint still matches, the summary just lies).

Outside :mod:`repro.core.metrics` this rule therefore forbids assigning
or augmenting any attribute reached through a ``metrics`` object —
``engine.scheduler.metrics.commits = 0`` and ``metrics.blocks += 1``
alike.  Reading counters stays unrestricted, as does replacing the
whole object (``scheduler.metrics = Metrics()``), which is how runs
reset.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..framework import Checker, Finding, Module

_METRICS_MODULE = "repro.core.metrics"


def _is_metrics_object(node: ast.expr) -> bool:
    """``metrics`` as a bare name or as the final attribute of a chain."""
    if isinstance(node, ast.Name):
        return node.id == "metrics"
    if isinstance(node, ast.Attribute):
        return node.attr == "metrics"
    return False


class MetricsDisciplineChecker(Checker):
    rule = "RR005"
    title = "metrics mutate only through Metrics.bump"

    def check_module(self, module: Module) -> Iterable[Finding]:
        if module.in_package(_METRICS_MODULE):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                if not _is_metrics_object(target.value):
                    continue
                findings.append(
                    self.finding(
                        module, node,
                        f"direct mutation of metrics counter "
                        f"{target.attr!r} bypasses Metrics.bump (and "
                        f"therefore the event bus); call "
                        f"metrics.bump({target.attr!r}) from the "
                        f"instrumented code path instead",
                    )
                )
        return findings
