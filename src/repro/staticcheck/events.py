"""Abstract lock events with vector clocks (the partial-order substrate).

The predictor in :mod:`repro.staticcheck.predict` reasons about *traces*:
sequences of granted lock acquisitions harvested from a recorded run.
This module gives those acquisitions a partial-order semantics — the
sound happens-before relation of the lock-graph school of dynamic
deadlock prediction (Goodlock and its partial-order refinements,
PAPERS.md) — so feasibility questions ("could these four blocking
points coexist in *some* reordering?") become vector-clock questions.

The happens-before relation for this system has exactly two sources:

* **program order** — every transaction program is straight-line, so
  its own acquisitions are totally ordered;
* **boot-segment barriers** — a service journal spans server restarts;
  every event of boot segment *k* happens-before every event of segment
  *k + 1* (the crash is a global synchronisation point: nothing that
  ran only after the restart can be reordered before it).

There is deliberately **no** edge for the scheduler's own interleaving
choices: reordering those is precisely what the predictive closure
explores.  Two acquisitions are *concurrent* (mutually reorderable) iff
neither happens-before the other — same segment, different
transactions.  Vector clocks make that check O(1) per pair while
staying exact for richer orders (more barrier sources can be added
without touching the consumers).

Harvest adapters produce :class:`AbstractLockEvent` streams from the
two trace sources the predictor consumes:

* :func:`events_from_acquisitions` — engine replays and fuzz corpora
  (one boot segment, program order only);
* :func:`harvest_journal` — service WAL/request journals read via
  :func:`repro.observability.export.read_events_jsonl`, tracking grants,
  partial rollbacks, commits, sheds, and ``SERVICE_RECOVER`` barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

from ..locking.modes import LockMode
from ..observability.events import EventKind
from ..observability.export import read_events_jsonl

#: The pseudo-component carrying boot-segment barrier ticks.  Real
#: transaction ids are ``T``-prefixed, so this cannot collide.
BARRIER = "__boot__"


class _AcquisitionLike(Protocol):
    """What the engine-trace adapter needs from a harvested grant."""

    txn: str
    entity: str
    mode: LockMode
    held_before: tuple[tuple[str, LockMode], ...]


@dataclass(frozen=True)
class AbstractLockEvent:
    """One granted acquisition, abstracted out of its concrete run.

    ``pos`` is the per-transaction acquisition ordinal (program order),
    ``segment`` the boot segment the grant happened in, ``held_before``
    the locks the transaction already held (entity, mode) at the grant,
    and ``clock`` the frozen vector clock — a sorted tuple of
    ``(component, tick)`` pairs over transaction ids plus :data:`BARRIER`.
    """

    txn: str
    entity: str
    mode: LockMode
    pos: int
    segment: int
    held_before: tuple[tuple[str, LockMode], ...]
    clock: tuple[tuple[str, int], ...]

    def tick(self, component: str) -> int:
        """This event's clock value for *component* (0 when absent)."""
        for name, value in self.clock:
            if name == component:
                return value
        return 0


def happens_before(a: AbstractLockEvent, b: AbstractLockEvent) -> bool:
    """``a`` happens-before ``b`` under program order + barriers."""
    if a is b:
        return False
    return a.tick(a.txn) <= b.tick(a.txn) and (
        a.txn != b.txn or a.pos < b.pos
    )


def concurrent(a: AbstractLockEvent, b: AbstractLockEvent) -> bool:
    """Neither ordered before the other — mutually reorderable."""
    return (
        a.txn != b.txn
        and not happens_before(a, b)
        and not happens_before(b, a)
    )


class _ClockBuilder:
    """Assigns vector clocks while a trace is replayed in order.

    Each transaction owns one clock component, advanced at every one of
    its events; a barrier joins *every* clock seen so far into the
    barrier frontier, so post-barrier events dominate all pre-barrier
    ones.  Purely incremental — callers feed events in trace order.
    """

    def __init__(self) -> None:
        self._txn_clocks: dict[str, dict[str, int]] = {}
        self._frontier: dict[str, int] = {}
        self.segment = 0

    def barrier(self) -> None:
        """A global synchronisation point (server restart)."""
        for clock in self._txn_clocks.values():
            for component, tick in clock.items():
                if tick > self._frontier.get(component, 0):
                    self._frontier[component] = tick
        self.segment += 1
        self._frontier[BARRIER] = self.segment

    def stamp(self, txn: str) -> tuple[tuple[str, int], ...]:
        """Advance *txn*'s clock past the frontier; return it frozen."""
        clock = self._txn_clocks.setdefault(txn, {})
        for component, tick in self._frontier.items():
            if tick > clock.get(component, 0):
                clock[component] = tick
        clock[txn] = clock.get(txn, 0) + 1
        return tuple(sorted(clock.items()))


def events_from_acquisitions(
    acquisitions: Iterable[_AcquisitionLike],
) -> list[AbstractLockEvent]:
    """Abstract an engine-harvested acquisition stream (one segment)."""
    clocks = _ClockBuilder()
    positions: dict[str, int] = {}
    events: list[AbstractLockEvent] = []
    for acq in acquisitions:
        pos = positions.get(acq.txn, 0)
        positions[acq.txn] = pos + 1
        events.append(
            AbstractLockEvent(
                txn=acq.txn,
                entity=acq.entity,
                mode=acq.mode,
                pos=pos,
                segment=0,
                held_before=acq.held_before,
                clock=clocks.stamp(acq.txn),
            )
        )
    return events


@dataclass
class JournalTrace:
    """Everything the journal adapter recovered from one JSONL file.

    ``lock_sequences`` maps each transaction to its full granted
    ``(entity, mode)`` sequence — the straight-line lock program the
    witness synthesiser replays; ``observed_deadlocks`` the transaction
    sets the live detector already reported (so predictions can be
    classified observed vs alternate-interleaving); ``segments`` how
    many boot segments the journal spans.
    """

    path: str
    events: list[AbstractLockEvent] = field(default_factory=list)
    lock_sequences: dict[str, tuple[tuple[str, LockMode], ...]] = field(
        default_factory=dict
    )
    observed_deadlocks: list[frozenset[str]] = field(default_factory=list)
    segments: int = 1

    @property
    def entities(self) -> list[str]:
        """Every entity any grant touched, sorted."""
        return sorted({event.entity for event in self.events})


_MODES = {"S": LockMode.SHARED, "X": LockMode.EXCLUSIVE}


def harvest_journal(path: str | Path) -> JournalTrace:
    """Abstract a service journal into lock events with vector clocks.

    Replays the journal's grant/rollback/commit/shed bookkeeping: a
    partial ``ROLLBACK`` to lock ordinal *k* truncates the held set to
    its first *k* grants (the paper's partial-rollback semantics);
    commits and sheds clear it.  ``SERVICE_RECOVER`` markers after the
    first lock activity advance the boot segment and the barrier clock.
    """
    trace = JournalTrace(path=str(path))
    clocks = _ClockBuilder()
    held: dict[str, list[tuple[str, LockMode]]] = {}
    positions: dict[str, int] = {}
    sequences: dict[str, list[tuple[str, LockMode]]] = {}
    saw_activity = False
    for event in read_events_jsonl(path):
        if event.kind is EventKind.SERVICE_RECOVER:
            if saw_activity:
                clocks.barrier()
            continue
        if event.kind is EventKind.LOCK_GRANT:
            txn = event.txn
            entity = str(event.data.get("entity", ""))
            mode = _MODES.get(str(event.data.get("mode", "X")), LockMode.EXCLUSIVE)
            if not txn or not entity:
                continue
            saw_activity = True
            pos = positions.get(txn, 0)
            positions[txn] = pos + 1
            trace.events.append(
                AbstractLockEvent(
                    txn=txn,
                    entity=entity,
                    mode=mode,
                    pos=pos,
                    segment=clocks.segment,
                    held_before=tuple(held.get(txn, ())),
                    clock=clocks.stamp(txn),
                )
            )
            held.setdefault(txn, []).append((entity, mode))
            sequence = sequences.setdefault(txn, [])
            if (entity, mode) not in sequence:
                sequence.append((entity, mode))
        elif event.kind is EventKind.ROLLBACK:
            target = event.data.get("target")
            if event.txn in held and isinstance(target, int):
                # Partial rollback to lock ordinal *target*: grants past
                # it are released (ordinal 0 = total restart).
                held[event.txn] = held[event.txn][:target]
        elif event.kind in (EventKind.TXN_COMMIT, EventKind.TXN_SHED):
            held.pop(event.txn, None)
        elif event.kind is EventKind.DEADLOCK:
            cycles = event.data.get("cycles", [])
            for cycle in cycles:
                if isinstance(cycle, list) and cycle:
                    trace.observed_deadlocks.append(
                        frozenset(str(t) for t in cycle)
                    )
    trace.lock_sequences = {
        txn: tuple(sequence) for txn, sequence in sequences.items()
    }
    trace.segments = clocks.segment + 1
    return trace
