"""The checker framework: findings, suppression, file walking.

A :class:`Checker` inspects parsed modules and yields :class:`Finding`
objects.  Checkers come in two granularities: per-module
(:meth:`Checker.check_module`, e.g. "this call is nondeterministic")
and whole-project (:meth:`Checker.check_project`, e.g. "this strategy
class is registered nowhere") — the latter sees every linted module at
once, which is what cross-file registration checks need.

Suppression follows the repo's own pragma, not a third-party tool's::

    self._deadline = time.monotonic()  # repro: noqa[RR001] wall-clock budget only

The bracketed list names the rules being waived on that physical line;
the trailing free text is the justification.  A pragma without a
justification still suppresses, but ``repro lint`` reports it so bare
waivers stay visible in review.

Rule codes are extracted from the bracket region by token, not by
splitting the whole region on commas, so punctuation in the region —
a parenthetical, a stray ``[`` from quoted code — cannot silently kill
the pragma, and ``noqa[RR001 RR002]`` (space-separated) waives both
rules rather than neither.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: noqa[RR001]`` or ``# repro: noqa[RR001,RR004] because ...``
#: The bracket region is anything up to the first ``]``; rule codes are
#: pulled out of it by token so commentary inside the brackets is inert.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[^\]]*)\]\s*(?P<why>.*)$"
)
_RULE_TOKEN_RE = re.compile(r"RR\d+", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    #: ``"error"`` findings are protocol violations; ``"warning"``
    #: findings are interleaving hazards a human should stare at.  Both
    #: fail ``repro lint`` — severity only grades how CI annotates them.
    severity: str = "error"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}: {self.rule} {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class Suppression:
    """A noqa pragma: which rules it waives on which line, and why."""

    line: int
    rules: tuple[str, ...]
    justification: str

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and finding.rule in self.rules


@dataclass
class Module:
    """One parsed source file, plus the metadata checkers scope on."""

    path: Path
    #: Dotted module name when the file sits inside a package
    #: (``repro.locking.table``); the bare stem otherwise.  Scope rules
    #: ("only inside ``repro.locking``") key on this.
    name: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)

    def in_package(self, dotted_prefix: str) -> bool:
        return self.name == dotted_prefix or self.name.startswith(
            dotted_prefix + "."
        )


class Checker:
    """Base class for lint rules.

    Subclasses set :attr:`rule` (the ``RR00x`` code) and :attr:`title`,
    and override one or both hooks.  Both default to "no findings" so a
    rule can be purely module-local or purely cross-project.
    """

    rule: str = "RR000"
    title: str = "abstract"
    severity: str = "error"

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, modules: Sequence[Module]) -> Iterable[Finding]:
        return ()

    def finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            message=message,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


def _module_name(path: Path) -> str:
    """Dotted name for *path*, walking up through ``__init__.py`` dirs."""
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def _parse_suppressions(source: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            dict.fromkeys(
                token.upper()
                for token in _RULE_TOKEN_RE.findall(match.group("rules"))
            )
        )
        if not rules:
            continue
        suppressions.append(
            Suppression(
                line=lineno,
                rules=rules,
                # Leading ``)]`` is debris from commentary inside the
                # bracket region; it is not part of the justification.
                justification=match.group("why").lstrip(")] ").strip(" -"),
            )
        )
    return suppressions


def load_module(path: Path) -> Module:
    """Parse one file into a :class:`Module` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return Module(
        path=path,
        name=_module_name(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=_parse_suppressions(source),
    )


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, deterministically ordered."""
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            yield path


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, Suppression]]
    files_checked: int
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def bare_suppressions(self) -> list[tuple[Finding, Suppression]]:
        """Suppressions that waive a real finding without a justification."""
        return [
            (finding, supp)
            for finding, supp in self.suppressed
            if not supp.justification
        ]


def run_lint(
    paths: Sequence[Path],
    checkers: Sequence[Checker],
    select: Sequence[str] | None = None,
) -> LintReport:
    """Lint every file under *paths* with *checkers*.

    ``select`` restricts to the named rules (``["RR001", "RR002"]``);
    ``None`` runs everything.  Findings on a line carrying a matching
    ``# repro: noqa[...]`` pragma are moved to the suppressed list.
    """
    if select is not None:
        wanted = {rule.upper() for rule in select}
        checkers = [c for c in checkers if c.rule in wanted]
    modules: list[Module] = []
    parse_errors: list[Finding] = []
    for path in iter_source_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    rule="RR000",
                    message=f"syntax error: {exc.msg}",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                )
            )
    raw: list[Finding] = []
    for checker in checkers:
        for module in modules:
            raw.extend(checker.check_module(module))
        raw.extend(checker.check_project(modules))
    by_path = {str(module.path): module for module in modules}
    findings: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.col, f.rule)):
        module = by_path.get(finding.path)
        pragma = None
        if module is not None:
            pragma = next(
                (s for s in module.suppressions if s.covers(finding)), None
            )
        if pragma is not None:
            suppressed.append((finding, pragma))
        else:
            findings.append(finding)
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(modules) + len(parse_errors),
        parse_errors=parse_errors,
    )
