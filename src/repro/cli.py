"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Generate a synthetic workload and run it through the scheduler,
    printing the metrics summary (optionally the full event trace).
``compare``
    Run the same workload under all three rollback strategies and print a
    side-by-side table.
``figures``
    Reproduce the paper's Figures 1–5 and print the measured artefacts
    next to the paper's statements.
``fuzz``
    Drive the verification fuzzer: randomized workloads × interleavings
    across every rollback strategy with the invariant oracles armed,
    reproducible from one seed (see ``docs/VERIFICATION.md``).
``chaos``
    Deterministic fault injection: scheduler/site crashes with WAL
    recovery, network faults, storage faults, stalls — either a seeded
    campaign or a crash-at-every-step recovery-equivalence sweep
    (see ``docs/RESILIENCE.md``).
``overload``
    Seeded open/closed-loop stress runs through the admission layer:
    MPL gating (fixed or AIMD), per-transaction deadline ladders, the
    Theorem 2 starvation watchdog.  Prints throughput, shed rate, p99
    commit latency in steps, and the watchdog verdict
    (see ``docs/RESILIENCE.md``).
``lint``
    The repo's own static analysis: determinism / lock-discipline /
    registration rules (RR001–RR006) plus ``--predict``, which lifts
    each recorded regression trace (or ``--journal`` service journal)
    into abstract lock events with vector clocks and reports deadlocks
    reachable in *alternate* interleavings, cross-validated by engine
    replay (see ``docs/STATIC_ANALYSIS.md``).
``advise``
    Static workload risk analysis without executing anything: lock-order
    inversion structure over the generated (or journal-harvested)
    transaction templates, a per-template risk score, and a recommended
    multiprogramming level that ``overload --admission predictive``
    anchors its window at (see ``docs/STATIC_ANALYSIS.md``).
``trace``
    Record a named scenario (or a seeded synthetic run) with the
    observability bus attached and export the event stream as JSONL,
    Chrome ``trace_event`` JSON, or a human-readable summary;
    ``--smoke`` double-runs the scenario and gates on byte-identical
    exports (see ``docs/OBSERVABILITY.md``).
``top``
    The operator dashboard for a recorded scenario: hottest entities,
    longest-blocked transactions, rollback victims, and the state of the
    admission / watchdog / breaker machinery as of a step.

``fuzz``, ``chaos``, ``overload``, ``lint``, ``advise --smoke`` and
``trace --smoke`` exit non-zero when anything fires, so CI can gate on
them directly.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    drive_figure1,
    drive_figure2,
    figure3a,
    figure3b,
    figure3c,
    figure4_transaction,
    figure4_transaction_without_ck,
    figure5_transaction,
    well_defined_states,
)
from .core.rollback import available_strategies
from .core.scheduler import Scheduler
from .core.victim import available_policies
from .graphs.render import concurrency_to_ascii
from .simulation import (
    RandomInterleaving,
    SimulationEngine,
    WorkloadConfig,
    expected_final_state,
    generate_workload,
)

#: Derived from the registries, so a newly registered strategy or
#: policy shows up in ``--help`` without touching this module (RR003).
STRATEGIES = available_strategies()
POLICIES = available_policies()


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--transactions", type=int, default=10,
                        help="number of concurrent transactions")
    parser.add_argument("--entities", type=int, default=10,
                        help="number of database entities")
    parser.add_argument("--locks", type=int, nargs=2, default=(2, 5),
                        metavar=("MIN", "MAX"),
                        help="locks per transaction (range)")
    parser.add_argument("--write-ratio", type=float, default=0.8,
                        help="probability a lock is exclusive")
    parser.add_argument("--skew", choices=("uniform", "zipf", "hotspot"),
                        default="hotspot", help="entity access skew")
    parser.add_argument("--scattered", action="store_true",
                        help="scatter writes across lock states (§5)")
    parser.add_argument("--three-phase", action="store_true",
                        help="generate acquire/update/release programs")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + interleaving seed")


def _build(args) -> tuple:
    config = WorkloadConfig(
        n_transactions=args.transactions,
        n_entities=args.entities,
        locks_per_txn=tuple(args.locks),
        write_ratio=args.write_ratio,
        skew=args.skew,
        clustered_writes=not args.scattered,
        three_phase=args.three_phase,
    )
    db, programs = generate_workload(config, seed=args.seed)
    return db, programs, expected_final_state(db, programs)


def _run_once(args, strategy: str, policy: str):
    db, programs, expected = _build(args)
    scheduler = Scheduler(db, strategy=strategy, policy=policy)
    engine = SimulationEngine(
        scheduler, RandomInterleaving(seed=args.seed + 1),
        max_steps=2_000_000, livelock_window=50_000,
    )
    for program in programs:
        engine.add(program)
    result = engine.run()
    serializable = (
        not result.livelock_detected and result.final_state == expected
    )
    return result, serializable


def cmd_run(args) -> int:
    result, serializable = _run_once(args, args.strategy, args.policy)
    if args.trace:
        print(result.trace.render())
        print()
    for key, value in result.metrics.summary().items():
        print(f"{key:>20}: {value}")
    print(f"{'steps':>20}: {result.steps}")
    print(f"{'mean blocked':>20}: {result.mean_blocked:.2f}")
    print(f"{'livelock':>20}: {result.livelock_detected}")
    print(f"{'serializable':>20}: {serializable}")
    return 0 if serializable else 1


def cmd_compare(args) -> int:
    print(f"{'strategy':<14}{'deadlocks':>10}{'rollbacks':>10}"
          f"{'restarts':>10}{'lost':>8}{'copies':>8}{'steps':>8}")
    ok = True
    for strategy in STRATEGIES:
        result, serializable = _run_once(args, strategy, args.policy)
        ok = ok and serializable
        m = result.metrics
        print(f"{strategy:<14}{m.deadlocks:>10}{m.rollbacks:>10}"
              f"{m.total_rollbacks:>10}{m.states_lost:>8}"
              f"{m.copies_peak:>8}{result.steps:>8}")
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    from .simulation import Sweep, WorkloadConfig, tabulate

    base = WorkloadConfig(
        n_transactions=args.transactions,
        n_entities=args.entities,
        locks_per_txn=tuple(args.locks),
        write_ratio=args.write_ratio,
        skew=args.skew,
        clustered_writes=not args.scattered,
        three_phase=args.three_phase,
    )
    sweep = Sweep(base=base, seeds=range(args.seeds))
    if args.axis == "strategy":
        cells = sweep.over_strategies(list(STRATEGIES), policy=args.policy)
    elif args.axis == "policy":
        cells = sweep.over_policies(list(POLICIES))
    else:
        cells = sweep.over_concurrency(
            [args.transactions // 2, args.transactions,
             args.transactions * 2],
            policy=args.policy,
        )
    print(tabulate(
        cells,
        metrics=("deadlocks", "rollbacks", "total_rollbacks",
                 "states_lost", "overshoot_states", "copies_peak"),
    ))
    return 0 if all(c.serializable for c in cells) else 1


def cmd_fuzz(args) -> int:
    from .verification import (
        COPY_STRATEGIES,
        FuzzConfig,
        describe_failure,
        fuzz_campaign,
        oracle_names,
        save_case,
    )

    from .core.rollback import make_strategy
    from .verification import make_oracles, resolve_policy
    from .verification.fuzzer import apply_profile

    strategies = tuple(
        s.strip() for s in args.strategies.split(",") if s.strip()
    ) or COPY_STRATEGIES
    try:
        make_oracles(args.check)
        for name in strategies:
            make_strategy(name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ordered = {"auto": None, "yes": True, "no": False}[args.ordered]
    config = FuzzConfig(
        seed=args.seed,
        steps=args.steps,
        checks=args.check,
        strategies=strategies,
        policy=resolve_policy(args.policy),
        ordered=ordered,
        n_transactions=args.transactions,
        n_entities=args.entities,
        locks_per_txn=tuple(args.locks),
        write_ratio=args.write_ratio,
        shrink_failures=not args.no_shrink,
        time_budget=args.time_budget,
    )
    # Profile overrides win over the shape flags: ``--profile hot`` is a
    # named preset, not a default the flags tweak.
    config = apply_profile(config, args.profile)
    report = fuzz_campaign(config)
    print(f"{'seed':>16}: {config.seed}")
    print(f"{'rounds':>16}: {report.rounds}")
    print(f"{'strategies':>16}: {', '.join(strategies)}")
    print(f"{'oracles':>16}: "
          f"{args.check if args.check != 'all' else ', '.join(oracle_names())}")
    print(f"{'engine steps':>16}: {report.total_steps}")
    print(f"{'deadlocks':>16}: {report.deadlocks}")
    print(f"{'rollbacks':>16}: {report.rollbacks}")
    print(f"{'commits':>16}: {report.commits}")
    print(f"{'elapsed':>16}: {report.elapsed:.2f}s")
    print(f"{'fingerprint':>16}: {report.fingerprint}")
    print(f"{'violations':>16}: {len(report.failures)}")
    for index, failure in enumerate(report.failures):
        print()
        print(describe_failure(failure))
        shrunk = failure.shrunk.case if failure.shrunk else failure.case
        if args.emit and shrunk is not None:
            path = save_case(
                shrunk,
                f"{args.emit}/case_{shrunk.oracle}_{config.seed}_"
                f"{index}.json",
            )
            print(f"  regression case written to {path}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    import time

    from .resilience import ChaosReport, chaos_run, crash_recovery_sweep
    from .verification import resolve_policy

    if args.partition_heal or args.smoke:
        return _chaos_scenarios(args)

    config = WorkloadConfig(
        n_transactions=args.transactions,
        n_entities=args.entities,
        locks_per_txn=tuple(args.locks),
        write_ratio=args.write_ratio,
        skew=args.skew,
    )
    strategies = tuple(
        s.strip() for s in args.strategies.split(",") if s.strip()
    )
    policy = resolve_policy(args.policy)
    deadline = None
    if args.time_budget is not None:
        started = time.monotonic()
        deadline = (
            lambda: time.monotonic() - started >= args.time_budget
        )
    if args.crash_every_step:
        report = crash_recovery_sweep(
            config,
            workload_seed=args.workload_seed
            if args.workload_seed is not None else args.seed,
            strategies=strategies,
            policy=policy,
            chaos_seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            every=args.every,
            sites=args.sites,
            replicate=args.replicate,
            cross_site_mode=args.cross_site_mode,
            deadline=deadline,
        )
    else:
        outcomes, violations = [], []
        for round_index in range(args.rounds):
            if deadline is not None and deadline():
                break
            for strategy in strategies:
                outcome = chaos_run(
                    config,
                    workload_seed=args.workload_seed
                    if args.workload_seed is not None else args.seed,
                    chaos_seed=args.seed + round_index,
                    strategy=strategy,
                    policy=policy,
                    crashes=args.crashes,
                    site_crashes=args.site_crashes,
                    partitions=args.partitions,
                    message_faults=args.message_faults,
                    storage_faults=args.storage_faults,
                    stalls=args.stalls,
                    degrade=not args.no_degrade,
                    checkpoint_every=args.checkpoint_every,
                    sites=args.sites,
                    replicate=args.replicate,
                    cross_site_mode=args.cross_site_mode,
                )
                outcomes.append(outcome)
                if outcome.violation is not None:
                    violations.append(outcome.violation)
        report = ChaosReport(outcomes=outcomes, violations=violations)

    crashes = sum(outcome.crashes for outcome in report.outcomes)
    recovered = sum(
        outcome.crashes
        for outcome in report.outcomes
        if outcome.violation is None
    )
    print(f"{'seed':>16}: {args.seed}")
    print(f"{'mode':>16}: "
          f"{'crash-every-step' if args.crash_every_step else 'campaign'}")
    print(f"{'strategies':>16}: {', '.join(strategies)}")
    print(f"{'runs':>16}: {len(report.outcomes)}")
    print(f"{'engine steps':>16}: {report.steps}")
    print(f"{'crashes':>16}: {crashes}")
    print(f"{'recovered':>16}: {recovered}")
    print(f"{'fingerprint':>16}: {report.fingerprint()}")
    print(f"{'violations':>16}: {len(report.violations)}")
    for violation in report.violations[:args.max_report]:
        print(f"  {violation}")
    if len(report.violations) > args.max_report:
        print(f"  ... and {len(report.violations) - args.max_report} more")
    return 0 if report.ok else 1


def _chaos_scenarios(args) -> int:
    """The named partition/heal scenario suite (``--partition-heal`` and
    the CI replication smoke ``--smoke``); non-zero exit on any verdict
    other than ``clean``."""
    from .distributed.scenarios import run_scenario, scenario_names

    names = scenario_names()
    if args.smoke:
        # The CI gate: every named scenario once at the fixed seed, plus
        # a replicated crash-recovery run — small enough for every push.
        seeds = [args.seed]
    else:
        seeds = [args.seed + i for i in range(args.rounds)]
    failures = 0
    runs = 0
    for seed in seeds:
        for name in names:
            outcome = run_scenario(
                name, workload_seed=seed, chaos_seed=seed
            )
            runs += 1
            marker = "ok" if outcome.ok else "FAIL"
            interesting = {
                key: value
                for key, value in sorted(outcome.metrics.items())
                if key in (
                    "commits", "timeout_rollbacks", "replica_catchups",
                    "stale_write_skips", "unavailable_stalls",
                ) and value
            }
            print(f"  [{marker}] {name} (seed {seed}) {interesting}")
            if not outcome.ok:
                failures += 1
                for reason in outcome.reasons[:args.max_report]:
                    print(f"         {reason}")
    print(f"{'mode':>16}: {'smoke' if args.smoke else 'partition-heal'}")
    print(f"{'scenarios':>16}: {', '.join(names)}")
    print(f"{'runs':>16}: {runs}")
    print(f"{'failures':>16}: {failures}")
    return 0 if failures == 0 else 1


def cmd_overload(args) -> int:
    from .admission.stress import OverloadConfig, overload_run
    from .errors import LivelockDetected

    admission = None if args.admission == "none" else args.admission
    if args.smoke:
        # A small fixed-shape run for CI gating: known to drain cleanly
        # (zero starved) at any seed within the step budget.
        config = OverloadConfig(
            n_transactions=12,
            n_entities=4,
            locks_per_txn=(2, 3),
            admission_policy=admission,
            deadline_steps=400,
            max_steps=60_000,
        )
    else:
        config = OverloadConfig(
            n_transactions=args.transactions,
            n_entities=args.entities,
            locks_per_txn=tuple(args.locks),
            write_ratio=args.write_ratio,
            interarrival=args.interarrival,
            admission_policy=admission,
            mpl=args.mpl,
            deadline_steps=args.deadline,
            watchdog=not args.no_watchdog,
            preemption_limit=args.preemption_limit,
            strategy=args.strategy,
            policy=args.policy,
            max_steps=args.max_steps,
        )
    try:
        report, _result = overload_run(config, seed=args.seed)
    except LivelockDetected as exc:
        print(f"livelock detected: {exc}")
        if exc.diagnosis is not None:
            print(exc.diagnosis.describe())
        return 1
    print(f"seed                 {args.seed}")
    print(f"mode                 "
          f"{'closed loop' if config.interarrival == 0 else 'open loop'}"
          f"{' (smoke)' if args.smoke else ''}")
    print(report.describe())
    print(f"fingerprint          {report.fingerprint()}")
    return 0 if report.no_starvation else 1


def cmd_advise(args) -> int:
    from .simulation.workload import WorkloadConfig
    from .staticcheck.workload import analyze_config, analyze_journal

    def build_report():
        if args.journal:
            return analyze_journal(
                args.journal, max_cycle_length=args.max_cycle_length
            )
        config = WorkloadConfig(
            n_transactions=args.transactions,
            n_entities=args.entities,
            locks_per_txn=tuple(args.locks),
            write_ratio=args.write_ratio,
            skew=args.skew,
        )
        return analyze_config(
            config,
            seed=args.seed,
            max_cycle_length=args.max_cycle_length,
        )

    if args.smoke:
        # CI gate: analyze a fixed hostile workload twice, require
        # byte-identical JSON and a sane verdict; any internal error
        # (exception, score out of range) exits non-zero.
        try:
            hot = WorkloadConfig(
                n_transactions=32,
                n_entities=6,
                locks_per_txn=(2, 4),
                write_ratio=1.0,
            )
            first = analyze_config(hot, seed=args.seed)
            second = analyze_config(hot, seed=args.seed)
            identical = first.to_json() == second.to_json()
            sane = (
                0.0 <= first.mean_pair_risk <= 1.0
                and first.recommended_mpl() >= 1
                and first.total_templates == 32
                and all(0.0 <= c.score <= 1.0 for c in first.classes)
            )
            print(f"deterministic        {identical}")
            print(f"sane                 {sane}")
            print(first.describe())
            return 0 if identical and sane else 1
        except Exception as exc:  # noqa: BLE001 - the gate must not pass
            print(f"advise smoke failed: {exc!r}")
            return 1

    report = build_report()
    if args.json:
        print(report.to_json())
    else:
        print(report.describe())
        print(
            f"suggested            repro overload --admission predictive, "
            f"or fixed-mpl --mpl {report.recommended_mpl(args.budget)}"
        )
    return 0


def cmd_lint(args) -> int:
    import json
    from pathlib import Path

    from .staticcheck import (
        all_rules,
        default_checkers,
        predict_corpus,
        predict_journal,
        run_lint,
    )

    if args.list_rules:
        for rule, title in all_rules():
            print(f"{rule}  {title}")
        return 0

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    report = run_lint(
        [Path(p) for p in args.paths], default_checkers(), select=select
    )
    exit_code = 0

    if args.json:
        print(json.dumps(
            {
                "files_checked": report.files_checked,
                "findings": [f.to_dict() for f in report.findings],
                "suppressed": [
                    {**f.to_dict(), "justification": s.justification}
                    for f, s in report.suppressed
                ],
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for finding in report.parse_errors + report.findings:
            print(finding.render())
        if args.show_suppressed:
            for finding, supp in report.suppressed:
                why = supp.justification or "(no justification)"
                print(f"{finding.render()}  [suppressed: {why}]")
    bare = report.bare_suppressions()
    for finding, _supp in bare:
        print(
            f"{finding.path}:{finding.line}: noqa[{finding.rule}] "
            f"without a justification; say why the waiver is safe",
            file=sys.stderr,
        )
    if not report.ok or bare:
        exit_code = 1
    if not args.json:
        print(
            f"checked {report.files_checked} files: "
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed"
        )

    if args.predict or args.journal:
        print()
        alternates = 0
        reports = []
        if args.predict:
            reports.extend(
                predict_corpus(
                    args.corpus,
                    max_cycle_length=args.max_cycle_length,
                    method=args.method,
                )
            )
        for journal in args.journal or ():
            reports.append(
                predict_journal(
                    journal,
                    max_cycle_length=args.max_cycle_length,
                    method=args.method,
                )
            )
        for pred in reports:
            segments = (
                f", {pred.segments} boot segment(s)"
                if pred.segments > 1
                else ""
            )
            print(
                f"{pred.case_path}: {pred.acquisitions} acquisitions, "
                f"{pred.edges} lock-order edges, "
                f"{pred.trace_deadlocks} deadlock(s) in the recorded "
                f"trace, {len(pred.predicted)} predicted cycle(s) "
                f"[{pred.method}{segments}]"
            )
            for deadlock in pred.predicted:
                print(f"  {deadlock.describe()}")
            alternates += len(pred.alternates)
            if not pred.ok:
                # A feasible cycle the engine could not realize means
                # the feasibility check over-approximated — fail loudly.
                exit_code = 1
        print(
            f"predict: {alternates} confirmed alternate-interleaving "
            f"deadlock(s) across the corpus"
        )

    return exit_code


def cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from .observability.export import (
        fingerprint,
        graph_snapshots,
        to_chrome,
        to_jsonl,
    )
    from .observability.scenarios import record_scenario
    from .observability.spans import build_spans, validate_spans
    from .observability.timeseries import build_timeseries

    if args.smoke:
        # CI gate: record the scenario twice from the same seed and
        # require byte-identical JSONL plus a well-formed span timeline.
        first, _ = record_scenario(
            args.scenario, seed=args.seed, sample_every=args.sample_every
        )
        second, _ = record_scenario(
            args.scenario, seed=args.seed, sample_every=args.sample_every
        )
        identical = to_jsonl(first.events) == to_jsonl(second.events)
        errors = validate_spans(build_spans(first.events))
        print(f"scenario             {args.scenario}")
        print(f"seed                 {args.seed}")
        print(f"events               {len(first.events)}")
        print(f"deterministic        {identical}")
        print(f"span errors          {len(errors)}")
        for error in errors[:5]:
            print(f"  {error}")
        print(f"fingerprint          {fingerprint(first.events)}")
        return 0 if identical and not errors else 1

    recorder, context = record_scenario(
        args.scenario, seed=args.seed, sample_every=args.sample_every
    )
    events = recorder.events
    if args.txn:
        from .observability.tracing import (
            build_txn_trace,
            render_txn_trace,
            trace_ids,
        )

        txn_trace = build_txn_trace(events, args.txn)
        if not txn_trace.entries:
            known = ", ".join(trace_ids(events)) or "none"
            print(
                f"no events for transaction {args.txn!r} in scenario "
                f"{args.scenario!r} (seed {args.seed}); known: {known}"
            )
            return 1
        if args.format == "jsonl":
            payload = (
                json.dumps(txn_trace.to_obj(), sort_keys=True) + "\n"
            )
        else:
            payload = render_txn_trace(txn_trace)
        if args.out:
            Path(args.out).write_text(payload)
            print(f"wrote {args.out} ({len(txn_trace.entries)} entries)")
        else:
            sys.stdout.write(payload)
        return 0
    if args.format == "jsonl":
        payload = to_jsonl(events)
    elif args.format == "chrome":
        payload = (
            json.dumps(to_chrome(events), indent=2, sort_keys=True) + "\n"
        )
    else:
        spans = build_spans(events)
        series = build_timeseries(events)
        lines = [f"scenario             {args.scenario}"]
        for key, value in context.items():
            if key in ("scenario", "metrics"):
                continue
            lines.append(f"{key:<21}{value}")
        lines += [
            f"events               {len(events)}",
            f"spans                {len(spans)}",
            f"graph snapshots      {len(graph_snapshots(events))}",
            f"block p50/p99        "
            f"{series.p50_block}/{series.p99_block} steps",
            f"peak active/blocked  "
            f"{series.peak('active')}/{series.peak('blocked')}",
            f"fingerprint          {fingerprint(events)}",
        ]
        payload = "\n".join(lines) + "\n"
    if args.out:
        Path(args.out).write_text(payload)
        print(f"wrote {args.out} ({len(events)} events)")
    else:
        sys.stdout.write(payload)
    return 0


def _render_live_metrics(metrics: dict) -> str:
    """Human rendering of one ``metrics`` verb snapshot."""
    lines = [
        f"server step          {metrics.get('step', 0)}",
        f"events folded        {metrics.get('events', 0)}",
        f"active/blocked       "
        f"{metrics.get('active', 0)}/{metrics.get('blocked', 0)}",
        f"commits/rollbacks    "
        f"{metrics.get('commits', 0)}/{metrics.get('rollbacks', 0)}",
        f"sheds/deadlocks      "
        f"{metrics.get('sheds', 0)}/{metrics.get('deadlocks', 0)}",
        f"states lost          {metrics.get('states_lost', 0)}",
        f"block p50/p99        "
        f"{metrics.get('block_p50', 0)}/{metrics.get('block_p99', 0)} "
        f"steps",
    ]
    hot = ", ".join(
        f"{entity}={count}"
        for entity, count in metrics.get("hot_entities", [])
    )
    victims = ", ".join(
        f"{txn}={count}"
        for txn, count in metrics.get("rollback_victims", [])
    )
    lines.append(f"hot entities         {hot or '-'}")
    lines.append(f"rollback victims     {victims or '-'}")
    return "\n".join(lines)


def _cmd_top_follow(args) -> int:
    """Poll a running server's ``metrics`` verb and render it live."""
    import json
    import time as _time

    from .service.client import ServiceClient

    if not args.connect:
        print("top --follow needs --connect HOST:PORT")
        return 2
    host, _, port = args.connect.rpartition(":")
    try:
        bound = int(port)
    except ValueError:
        print(f"bad --connect address {args.connect!r}")
        return 2
    iteration = 0
    with ServiceClient(host or "127.0.0.1", bound, name="repro-top") as c:
        while True:
            iteration += 1
            reply = c.metrics()
            metrics = {
                k: v
                for k, v in reply.items()
                if k not in ("rid", "ok", "verb", "code", "trace")
            }
            if args.json:
                print(json.dumps(metrics, sort_keys=True))
            else:
                print(f"-- poll {iteration} --")
                print(_render_live_metrics(metrics))
            if args.iterations and iteration >= args.iterations:
                return 0
            _time.sleep(args.interval)


def cmd_top(args) -> int:
    import json

    from .observability.scenarios import record_scenario
    from .observability.top import build_top, render_top

    if args.follow or args.connect:
        return _cmd_top_follow(args)
    recorder, _context = record_scenario(
        args.scenario, seed=args.seed, sample_every=args.sample_every
    )
    report = build_top(recorder.events, at=args.at, limit=args.limit)
    if args.json:
        print(json.dumps(report.to_obj(), indent=2, sort_keys=True))
    else:
        print(render_top(report))
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import json
    import tempfile

    from .service.core import ServiceConfig
    from .service.replay import verify_journal
    from .service.server import serve

    if args.verify:
        divergences = verify_journal(args.verify)
        if divergences:
            print(f"REPLAY DIVERGED ({len(divergences)}):")
            for line in divergences:
                print(f"  {line}")
            return 1
        print(f"replay verified: {args.verify} — zero divergences")
        return 0

    if args.smoke:
        from .service.smoke import run_smoke

        workdir = args.workdir or tempfile.mkdtemp(prefix="repro-smoke-")
        report = run_smoke(
            workdir,
            clients=args.clients,
            commits_per_client=args.commits,
            kill_after=args.kill_after,
            entities=args.entities,
        )
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1

    config = ServiceConfig(
        max_sessions=args.max_sessions,
        deadline_steps=args.deadline,
        strategy=args.strategy,
        policy=args.policy,
    )
    return asyncio.run(
        serve(
            args.host,
            args.port,
            args.entities,
            args.initial,
            config,
            wal_path=args.wal,
            journal_path=args.journal,
            port_file=args.port_file,
            tick_interval=args.tick_interval,
            drain_timeout=args.drain_timeout,
            metrics_port=(
                args.metrics_port if args.metrics else None
            ),
            metrics_port_file=args.metrics_port_file,
        )
    )


def cmd_figures(_args) -> int:
    print("Figure 1 — exclusive-lock deadlock, cost-optimal victim")
    engine, result = drive_figure1(policy="min-cost")
    print(f"  cycle: {' -> '.join(result.deadlock.cycles[0])}")
    print(f"  action: {result.actions[0]}  (paper: rollback T2, cost 4)")
    print("  graph after resolution:")
    for line in concurrency_to_ascii(
        engine.scheduler.concurrency_graph()
    ).splitlines():
        print(f"    {line}")

    print("\nFigure 2 — potentially infinite mutual preemption")
    unordered = drive_figure2("min-cost")
    ordered = drive_figure2("ordered-min-cost")
    print(f"  min-cost:         livelock={unordered.livelock_detected} "
          f"rollbacks={unordered.metrics.rollbacks}")
    print(f"  ordered-min-cost: livelock={ordered.livelock_detected} "
          f"commits={len(ordered.committed)}  (Theorem 2)")

    print("\nFigure 3 — shared + exclusive locks")
    a, b, c = figure3a(), figure3b(), figure3c()
    print(f"  3(a): forest={a.is_forest()} deadlock={a.has_deadlock()}")
    print(f"  3(b): cycles through T1: {b.cycles_through('T1')}")
    print(f"  3(c): cycles through T1: {c.cycles_through('T1')}")

    print("\nFigure 4 — state-dependency graph")
    print(f"  scattered T1:  well-defined = "
          f"{well_defined_states(figure4_transaction())}")
    print(f"  without C<-K:  well-defined = "
          f"{well_defined_states(figure4_transaction_without_ck())}")

    print("\nFigure 5 — clustered writes")
    print(f"  clustered T2:  well-defined = "
          f"{well_defined_states(figure5_transaction())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .staticcheck import all_rules
    from .verification import COPY_STRATEGIES, oracle_names
    from .verification.faults import FAULT_POLICIES
    from .verification.fuzzer import FUZZ_PROFILES

    fault_policy_names = tuple(sorted(FAULT_POLICIES))
    # The epilogs enumerate the registries at parser-build time, so
    # ``--help`` always matches what make_strategy/make_policy accept.
    registry_epilog = (
        f"registered strategies: {', '.join(STRATEGIES)} | "
        f"victim policies: {', '.join(POLICIES)} | "
        f"fault policies: {', '.join(fault_policy_names)} | "
        f"oracles: {', '.join(oracle_names())}"
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Partial-rollback deadlock removal "
            "(Fussell/Kedem/Silberschatz, SIGMOD 1981) — simulation CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one synthetic workload")
    _add_workload_args(p_run)
    p_run.add_argument("--strategy", choices=STRATEGIES, default="mcs")
    p_run.add_argument("--policy", choices=POLICIES,
                       default="ordered-min-cost")
    p_run.add_argument("--trace", action="store_true",
                       help="print the full event trace")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare",
                           help="same workload under all strategies")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--policy", choices=POLICIES,
                       default="ordered-min-cost")
    p_cmp.set_defaults(fn=cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="sweep one axis over a workload and tabulate"
    )
    _add_workload_args(p_sweep)
    p_sweep.add_argument("--axis",
                         choices=("strategy", "policy", "concurrency"),
                         default="strategy")
    p_sweep.add_argument("--policy", choices=POLICIES,
                         default="ordered-min-cost")
    p_sweep.add_argument("--seeds", type=int, default=3,
                         help="number of seeds per cell")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_fig = sub.add_parser("figures",
                           help="reproduce the paper's figures")
    p_fig.set_defaults(fn=cmd_figures)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz schedules across strategies with invariant oracles",
        epilog=registry_epilog,
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (whole campaign derives "
                             "from it)")
    p_fuzz.add_argument("--steps", type=int, default=2000,
                        help="total engine-step budget for the campaign")
    p_fuzz.add_argument("--check", default="all",
                        help="'all' or comma-separated oracle names")
    p_fuzz.add_argument("--strategies",
                        default=",".join(COPY_STRATEGIES),
                        help="comma-separated rollback strategies to "
                             "differentially compare")
    # Fault policies (deliberately broken, from repro.verification.faults)
    # are accepted too, so a planted bug's detection can be reproduced
    # from the command line.
    p_fuzz.add_argument("--policy",
                        choices=POLICIES + fault_policy_names,
                        default="ordered-min-cost")
    p_fuzz.add_argument("--ordered", choices=("auto", "yes", "no"),
                        default="auto",
                        help="arm the Theorem 2 oracles regardless of the "
                             "policy name ('auto' infers from the name)")
    p_fuzz.add_argument("--transactions", type=int, default=5)
    p_fuzz.add_argument("--entities", type=int, default=5)
    p_fuzz.add_argument("--locks", type=int, nargs=2, default=(2, 4),
                        metavar=("MIN", "MAX"))
    p_fuzz.add_argument("--write-ratio", type=float, default=0.75,
                        help="write ratio for mixed (odd) rounds; even "
                             "rounds are always exclusive-only")
    p_fuzz.add_argument("--profile",
                        choices=tuple(sorted(FUZZ_PROFILES)),
                        default="default",
                        help="named workload preset ('hot' = high "
                             "contention: many writers, few entities)")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock cap in seconds (CI smoke runs)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failures without ddmin shrinking")
    p_fuzz.add_argument("--emit", default=None, metavar="DIR",
                        help="write shrunk failures as regression JSON "
                             "files into DIR")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic fault injection with crash recovery "
             "(see docs/RESILIENCE.md)",
        epilog=registry_epilog,
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="chaos seed: the entire fault schedule "
                              "derives from it")
    p_chaos.add_argument("--workload-seed", type=int, default=None,
                         help="workload seed (defaults to --seed)")
    p_chaos.add_argument("--transactions", type=int, default=5)
    p_chaos.add_argument("--entities", type=int, default=6)
    p_chaos.add_argument("--locks", type=int, nargs=2, default=(2, 4),
                         metavar=("MIN", "MAX"))
    p_chaos.add_argument("--write-ratio", type=float, default=1.0)
    p_chaos.add_argument("--skew",
                         choices=("uniform", "zipf", "hotspot"),
                         default="uniform")
    p_chaos.add_argument("--strategies",
                         default=",".join(COPY_STRATEGIES),
                         help="comma-separated rollback strategies")
    p_chaos.add_argument("--policy",
                         choices=POLICIES + fault_policy_names,
                         default="ordered-min-cost")
    p_chaos.add_argument("--crash-every-step", action="store_true",
                         help="sweep: plant one crash at every recorded "
                              "event index and check recovery "
                              "equivalence")
    p_chaos.add_argument("--every", type=int, default=1,
                         help="sweep stride between crash points")
    p_chaos.add_argument("--rounds", type=int, default=3,
                         help="campaign rounds (non-sweep mode)")
    p_chaos.add_argument("--crashes", type=int, default=1,
                         help="scheduler crashes per campaign run")
    p_chaos.add_argument("--site-crashes", type=int, default=0)
    p_chaos.add_argument("--partitions", type=int, default=0,
                         help="random network partitions to draw from the "
                              "seed (requires --sites >= 2)")
    p_chaos.add_argument("--replicate", type=int, default=0,
                         help="replication factor: >= 1 runs the "
                              "replicated scheduler over a "
                              "consistent-hash view (available copies, "
                              "read-one/write-all-available)")
    p_chaos.add_argument("--partition-heal", action="store_true",
                         help="run the named partition/heal scenario "
                              "suite instead of the random campaign")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="the CI replication smoke: every named "
                              "scenario once at the fixed seed; non-zero "
                              "exit on any oracle violation")
    p_chaos.add_argument("--message-faults", type=int, default=0,
                         help="network drops/duplicates/delays per run "
                              "(needs --sites)")
    p_chaos.add_argument("--storage-faults", type=int, default=0,
                         help="copy-pop / undo-apply faults per run")
    p_chaos.add_argument("--stalls", type=int, default=0,
                         help="transaction stalls per run")
    p_chaos.add_argument("--no-degrade", action="store_true",
                         help="propagate storage faults instead of "
                              "degrading to total restart")
    p_chaos.add_argument("--sites", type=int, default=0,
                         help="run distributed over this many sites "
                              "(0 = centralised)")
    p_chaos.add_argument("--cross-site-mode",
                         choices=("wound-wait", "wait-die", "probe"),
                         default="wound-wait")
    p_chaos.add_argument("--checkpoint-every", type=int, default=10,
                         help="recorded events between WAL checkpoints")
    p_chaos.add_argument("--time-budget", type=float, default=None,
                         help="wall-clock cap in seconds (CI smoke runs)")
    p_chaos.add_argument("--max-report", type=int, default=5,
                         help="violations to print in full")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_over = sub.add_parser(
        "overload",
        help="seeded overload stress through the admission layer "
             "(see docs/RESILIENCE.md)",
        epilog=registry_epilog,
    )
    p_over.add_argument("--seed", type=int, default=0,
                        help="workload + interleaving + AIMD probe seed")
    p_over.add_argument("--smoke", action="store_true",
                        help="small fixed-shape run for CI gating "
                             "(ignores the workload flags)")
    p_over.add_argument("--transactions", type=int, default=32)
    p_over.add_argument("--entities", type=int, default=6)
    p_over.add_argument("--locks", type=int, nargs=2, default=(2, 4),
                        metavar=("MIN", "MAX"))
    p_over.add_argument("--write-ratio", type=float, default=1.0)
    p_over.add_argument("--interarrival", type=int, default=0,
                        help="steps between arrivals (0 = closed loop: "
                             "everything arrives at step 0)")
    p_over.add_argument("--admission",
                        choices=("aimd", "fixed-mpl", "predictive", "none"),
                        default="aimd",
                        help="admission policy gating registration "
                             "(predictive = static workload risk scoring, "
                             "see repro advise)")
    p_over.add_argument("--mpl", type=int, default=8,
                        help="multiprogramming level for fixed-mpl")
    p_over.add_argument("--deadline", type=int, default=600,
                        help="steps before the escalation ladder starts "
                             "(0 = no deadlines)")
    p_over.add_argument("--no-watchdog", action="store_true",
                        help="disable the starvation watchdog")
    p_over.add_argument("--preemption-limit", type=int, default=4,
                        help="preemptions before the watchdog grants "
                             "immunity (Theorem 2 aging)")
    p_over.add_argument("--strategy", choices=STRATEGIES, default="mcs")
    p_over.add_argument("--policy", choices=POLICIES,
                        default="ordered-min-cost")
    p_over.add_argument("--max-steps", type=int, default=200_000)
    p_over.set_defaults(fn=cmd_overload)

    from .observability.scenarios import SCENARIOS

    p_trace = sub.add_parser(
        "trace",
        help="record a scenario and export its event trace "
             "(see docs/OBSERVABILITY.md)",
        epilog="scenarios: " + ", ".join(SCENARIOS),
    )
    p_trace.add_argument("scenario", nargs="?", default="run",
                         choices=SCENARIOS,
                         help="named scenario to record (default: a "
                              "seeded synthetic run)")
    p_trace.add_argument("--seed", type=int, default=0,
                         help="scenario seed (same seed, byte-identical "
                              "export)")
    p_trace.add_argument("--format",
                         choices=("jsonl", "chrome", "summary"),
                         default="jsonl",
                         help="jsonl event log, Chrome trace_event JSON, "
                              "or a human-readable summary")
    p_trace.add_argument("--txn", default=None, metavar="TXN",
                         help="drill into one transaction: render its "
                              "stitched cross-site timeline (summary) "
                              "or structured object (jsonl)")
    p_trace.add_argument("--out", default=None, metavar="FILE",
                         help="write the export to FILE instead of "
                              "stdout")
    p_trace.add_argument("--sample-every", type=int, default=25,
                         help="steps between waits-for graph snapshots "
                              "(0 = no snapshots)")
    p_trace.add_argument("--smoke", action="store_true",
                         help="CI gate: double-run the scenario and "
                              "fail unless exports are byte-identical "
                              "and the span timeline validates")
    p_trace.set_defaults(fn=cmd_trace)

    p_top = sub.add_parser(
        "top",
        help="operator dashboard computed from a recorded scenario "
             "(see docs/OBSERVABILITY.md)",
        epilog="scenarios: " + ", ".join(SCENARIOS),
    )
    p_top.add_argument("scenario", nargs="?", default="run",
                       choices=SCENARIOS)
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument("--at", type=int, default=None,
                       help="dashboard as of this step (default: end "
                            "of run)")
    p_top.add_argument("--limit", type=int, default=5,
                       help="rows per ranking table")
    p_top.add_argument("--sample-every", type=int, default=25)
    p_top.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    p_top.add_argument("--follow", action="store_true",
                       help="poll a running server's metrics verb "
                            "instead of recording a scenario")
    p_top.add_argument("--connect", default=None, metavar="HOST:PORT",
                       help="server address for --follow")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="seconds between --follow polls")
    p_top.add_argument("--iterations", type=int, default=0,
                       help="stop --follow after N polls (0 = forever)")
    p_top.set_defaults(fn=cmd_top)

    p_serve = sub.add_parser(
        "serve",
        help="run the network-facing lock service "
             "(see docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--port-file", default=None,
                         help="write the bound port to this file")
    p_serve.add_argument("--entities", type=int, default=16,
                         help="number of entities e000..eNNN")
    p_serve.add_argument("--initial", type=int, default=0,
                         help="initial value of every entity")
    p_serve.add_argument("--wal", default=None,
                         help="durable WAL path (enables crash recovery)")
    p_serve.add_argument("--journal", default=None,
                         help="request-journal path (enables --verify)")
    p_serve.add_argument("--max-sessions", type=int, default=8,
                         help="admission MPL; over capacity answers 429")
    p_serve.add_argument("--deadline", type=int, default=60,
                         help="default deadline in logical steps")
    p_serve.add_argument("--strategy", choices=STRATEGIES, default="mcs")
    p_serve.add_argument("--policy", choices=POLICIES,
                         default="ordered-min-cost")
    p_serve.add_argument("--tick-interval", type=float, default=0.05,
                         help="idle-ticker period in seconds")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         help="seconds to wait for sessions on SIGTERM")
    p_serve.add_argument("--verify", default=None, metavar="JOURNAL",
                         help="replay JOURNAL through the simulator and "
                              "report divergences instead of serving")
    p_serve.add_argument("--smoke", action="store_true",
                         help="boot, storm, kill -9, restart, drain, "
                              "verify — the CI gate")
    p_serve.add_argument("--workdir", default=None,
                         help="smoke working directory (default: tmp)")
    p_serve.add_argument("--clients", type=int, default=4,
                         help="smoke: concurrent storm clients")
    p_serve.add_argument("--commits", type=int, default=3,
                         help="smoke: commits required per client")
    p_serve.add_argument("--kill-after", type=float, default=1.0,
                         help="smoke: seconds before the SIGKILL")
    p_serve.add_argument("--metrics", action="store_true",
                         help="also serve Prometheus text exposition "
                              "on a second HTTP listener")
    p_serve.add_argument("--metrics-port", type=int, default=0,
                         help="metrics listener port (0 = ephemeral)")
    p_serve.add_argument("--metrics-port-file", default=None,
                         help="write the bound metrics port to this "
                              "file")
    p_serve.set_defaults(fn=cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis rules "
             "(see docs/STATIC_ANALYSIS.md)",
        epilog="rules: " + "; ".join(
            f"{rule} {title}" for rule, title in all_rules()
        ),
    )
    p_lint.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    p_lint.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    p_lint.add_argument("--show-suppressed", action="store_true",
                        help="also print pragma-suppressed findings")
    p_lint.add_argument("--predict", action="store_true",
                        help="build lock-order graphs from the recorded "
                             "regression traces and report deadlocks "
                             "reachable in alternate interleavings")
    p_lint.add_argument("--corpus", default="tests/regressions",
                        help="regression-case directory for --predict")
    p_lint.add_argument("--method",
                        choices=("partial-order", "gate-lock"),
                        default="partial-order",
                        help="feasibility model: the sound partial-order "
                             "closure (vector clocks, depth 4) or the "
                             "legacy gate-lock heuristic (depth 3)")
    p_lint.add_argument("--journal", action="append", default=None,
                        metavar="JSONL",
                        help="also predict from this service journal "
                             "(repeatable; boot segments become "
                             "happens-before barriers)")
    p_lint.add_argument("--max-cycle-length", type=int, default=None,
                        help="largest predicted cycle to search for "
                             "(default: 4 partial-order, 3 gate-lock)")
    p_lint.set_defaults(fn=cmd_lint)

    p_advise = sub.add_parser(
        "advise",
        help="static workload deadlock-risk scoring and MPL advice "
             "(see docs/STATIC_ANALYSIS.md)",
    )
    p_advise.add_argument("--seed", type=int, default=0,
                          help="workload generation seed")
    p_advise.add_argument("--transactions", type=int, default=32)
    p_advise.add_argument("--entities", type=int, default=6)
    p_advise.add_argument("--locks", type=int, nargs=2, default=(2, 4),
                          metavar=("MIN", "MAX"))
    p_advise.add_argument("--write-ratio", type=float, default=1.0)
    p_advise.add_argument("--skew",
                          choices=("uniform", "zipf", "hotspot"),
                          default="uniform")
    p_advise.add_argument("--journal", default=None, metavar="JSONL",
                          help="score the workload a service journal "
                               "recorded instead of generating one")
    p_advise.add_argument("--budget", type=float, default=0.5,
                          help="expected-deadlock budget behind the MPL "
                               "recommendation")
    p_advise.add_argument("--max-cycle-length", type=int, default=4,
                          help="largest cross-class entity ring to "
                               "search for")
    p_advise.add_argument("--json", action="store_true",
                          help="machine-readable report on stdout")
    p_advise.add_argument("--smoke", action="store_true",
                          help="CI gate: fixed workload analyzed twice, "
                               "byte-identical and sane or non-zero exit")
    p_advise.set_defaults(fn=cmd_advise)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
