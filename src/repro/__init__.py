"""Reproduction of Fussell, Kedem & Silberschatz (SIGMOD 1981):
*Deadlock Removal Using Partial Rollback in Database Systems*.

A production-quality simulation library for two-phase-locking database
concurrency control with partial-rollback deadlock removal:

* :class:`Database` / entities — the global store (§2's system model).
* :class:`TransactionProgram` + :mod:`repro.core.operations` — validated,
  re-executable transaction programs.
* :class:`Scheduler` — the concurrency control: grant / wait / rollback.
* Rollback strategies: :class:`TotalRestartStrategy` (the classical
  baseline), :class:`MultiLockCopyStrategy` (MCS, §4),
  :class:`SingleCopyStrategy` (state-dependency graphs, §4).
* Victim policies: minimum-cost, ordered minimum-cost (Theorem 2),
  requester, youngest, oldest.
* :mod:`repro.simulation` — deterministic interleaving engine, synthetic
  workload generator, metrics.
* :mod:`repro.distributed` — multi-site substrate (§3.3).
* :mod:`repro.analysis` — transaction-structure analysis (§5) and the
  paper's figure scenarios.

Quickstart
----------
>>> from repro import Database, Scheduler, TransactionProgram, ops
>>> db = Database({"a": 10, "b": 20})
>>> t1 = TransactionProgram("T1", [
...     ops.lock_exclusive("a"),
...     ops.read("a", into="x"),
...     ops.write("a", ops.var("x") + ops.const(1)),
...     ops.unlock("a"),
... ])
>>> scheduler = Scheduler(db, strategy="mcs", policy="ordered-min-cost")
>>> _ = scheduler.register(t1)
>>> scheduler.run_until_quiescent()
>>> db["a"]
11
"""

from .core import (
    Deadlock,
    DeadlockDetector,
    Metrics,
    MinCostPolicy,
    MultiLockCopyStrategy,
    OldestPolicy,
    OrderedMinCostPolicy,
    RequesterPolicy,
    RollbackAction,
    RollbackStrategy,
    Scheduler,
    SingleCopyStrategy,
    StepOutcome,
    StepResult,
    TotalRestartStrategy,
    Transaction,
    TransactionProgram,
    TxnStatus,
    VictimPolicy,
    make_policy,
    make_strategy,
    ops,
)
from .errors import (
    ConsistencyViolation,
    DeadlockUnresolvableError,
    LockError,
    ProtocolViolation,
    ReproError,
    RollbackError,
    SimulationError,
    UnknownEntityError,
    UnknownTransactionError,
)
from .graphs import ConcurrencyGraph, StateDependencyGraph
from .locking import EXCLUSIVE, SHARED, LockManager, LockMode, LockTable
from .storage import Database, Entity

__version__ = "1.0.0"

__all__ = [
    "ConcurrencyGraph",
    "ConsistencyViolation",
    "Database",
    "Deadlock",
    "DeadlockDetector",
    "DeadlockUnresolvableError",
    "EXCLUSIVE",
    "Entity",
    "LockError",
    "LockManager",
    "LockMode",
    "LockTable",
    "Metrics",
    "MinCostPolicy",
    "MultiLockCopyStrategy",
    "OldestPolicy",
    "OrderedMinCostPolicy",
    "ProtocolViolation",
    "ReproError",
    "RequesterPolicy",
    "RollbackAction",
    "RollbackError",
    "RollbackStrategy",
    "SHARED",
    "Scheduler",
    "SimulationError",
    "SingleCopyStrategy",
    "StateDependencyGraph",
    "StepOutcome",
    "StepResult",
    "TotalRestartStrategy",
    "Transaction",
    "TransactionProgram",
    "TxnStatus",
    "UnknownEntityError",
    "UnknownTransactionError",
    "VictimPolicy",
    "__version__",
    "make_policy",
    "make_strategy",
    "ops",
]
