"""Chaos engineering for the partial-rollback reproduction.

Deterministic fault injection (:mod:`~repro.resilience.faults`),
write-ahead logging and checkpoints (:mod:`~repro.resilience.wal`),
crash recovery (:mod:`~repro.resilience.recovery`), and the chaos/crash
sweep harness (:mod:`~repro.resilience.chaos`).  See
``docs/RESILIENCE.md`` for the fault vocabulary, the WAL format, and the
degradation ladder.
"""

from .chaos import (
    RECOVERY_EQUIVALENCE,
    ChaosReport,
    ChaosRunOutcome,
    chaos_run,
    crash_recovery_sweep,
    recovery_equivalence_check,
)
from .faults import (
    CrashSignal,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from .recovery import RecoveredSystem, RecoveryManager
from .wal import Checkpoint, WalKind, WalRecord, WriteAheadLog

__all__ = [
    "RECOVERY_EQUIVALENCE",
    "ChaosReport",
    "ChaosRunOutcome",
    "Checkpoint",
    "CrashSignal",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RecoveredSystem",
    "RecoveryManager",
    "WalKind",
    "WalRecord",
    "WriteAheadLog",
    "chaos_run",
    "crash_recovery_sweep",
    "recovery_equivalence_check",
]
