"""Crash recovery: rebuild a working system from the write-ahead log.

:class:`RecoveryManager` pairs one engine with one
:class:`~repro.resilience.wal.WriteAheadLog`: it installs the WAL on the
scheduler (which then logs grants, installs, commits, and rollbacks ahead
of applying them) and takes a durable checkpoint every
``checkpoint_every`` recorded events.

After a :class:`~repro.resilience.faults.CrashSignal`, :meth:`recover`
reconstructs the durable state — latest checkpoint plus redo of committed
installs — and reports which transaction programs survive (registered but
not yet committed).  The caller rebuilds a fresh scheduler over the
recovered database, re-registers the survivors *in their original
admission order* (preserving the Theorem 2 entry ordering among them),
and resumes.  In-flight progress is deliberately lost: local copies,
lock tables, and partial executions are volatile, so a crashed
transaction restarts from its program — the bottom rung of the
degradation ladder, and always safe because uncommitted work never
touches the global database (commit-time installation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import StepOutcome
from ..core.transaction import TransactionProgram
from .wal import WriteAheadLog


@dataclass
class RecoveredSystem:
    """What recovery salvages from a crash."""

    state: dict
    committed: list[str]
    survivors: list[TransactionProgram]


class RecoveryManager:
    """WAL installation, periodic checkpoints, and crash recovery.

    Parameters
    ----------
    programs:
        Every program admitted to the run, in admission order; recovery
        derives the survivor list from it.
    checkpoint_every:
        Recorded events between checkpoints.  ``0`` disables periodic
        checkpoints (recovery then replays the whole log).
    """

    def __init__(
        self,
        programs: list[TransactionProgram],
        checkpoint_every: int = 25,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.programs = list(programs)
        self.checkpoint_every = checkpoint_every
        self.wal: WriteAheadLog | None = None
        self._committed: list[str] = []
        self._events = 0

    def attach(self, engine) -> None:
        """Install the WAL on *engine*'s scheduler and start observing.

        The WAL's recovery base is the database as of attachment, so
        attach before the first step.  Chainable: a pre-existing observer
        keeps running first.
        """
        scheduler = engine.scheduler
        self.wal = WriteAheadLog(scheduler.database.snapshot())
        self.wal.bus = scheduler.bus
        scheduler.wal = self.wal
        previous = engine.on_step

        def observe(eng, event) -> None:
            if previous is not None:
                previous(eng, event)
            self._on_event(eng, event)

        engine.on_step = observe

    def _on_event(self, engine, event) -> None:
        if event.outcome is StepOutcome.COMMITTED:
            self._committed.append(event.txn_id)
        self._events += 1
        if (
            self.checkpoint_every
            and self._events % self.checkpoint_every == 0
        ):
            self.wal.checkpoint(
                step=event.step,
                state=engine.scheduler.database.snapshot(),
                committed=self._committed,
            )

    def recover(self) -> RecoveredSystem:
        """Durable state + survivor programs at the crash point."""
        if self.wal is None:
            raise RuntimeError("recover() before attach(): no WAL exists")
        state, committed = self.wal.recover_state()
        survivors = [
            program
            for program in self.programs
            if program.txn_id not in committed
        ]
        return RecoveredSystem(
            state=state,
            committed=sorted(committed),
            survivors=survivors,
        )
