"""Deterministic fault planning and injection.

A :class:`FaultPlan` is generated *entirely* from one seed: which engine
steps crash the scheduler, which inter-site sends are dropped, duplicated,
or delayed, which rollback invocations hit damaged copy storage, which
transactions stall and for how long.  The plan is a plain value — it can
be fingerprinted, serialised into a regression case, and replayed
byte-for-byte — so every chaos run is exactly reproducible from
``(workload config, workload seed, chaos seed)``.

:class:`FaultInjector` arms a plan against a live
:class:`~repro.simulation.engine.SimulationEngine` through the existing
observation surfaces, without changing any engine code path when no fault
is scheduled:

* scheduler/site crashes and transaction stalls key on the *recorded
  trace-event index* (the engine's idle iterations are invisible to the
  trace, so event indices are stable across schedulers);
* network faults key on the *attempted-send index* of the
  :class:`~repro.distributed.network.MessageLog`;
* storage faults key on the *rollback invocation index* via the strategy
  ``fault_hook`` — ``copy-pop`` faults fire for copy-keeping strategies
  (MCS / k-copy / single-copy), ``undo-apply`` faults for the undo log;
  total restart keeps no partial state and is immune by construction.

Counters live in the injector, not in the engine, and persist across
:meth:`FaultInjector.attach` calls — after a crash the recovery loop
attaches the same injector to the successor engine and the global indices
keep counting, so "crash at event 40" and "drop send 17" mean the same
thing no matter how many times the system has already crashed.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass, field

from ..distributed.network import DeliveryAction, Message
from ..errors import StorageFault


class CrashSignal(Exception):
    """The injected scheduler crash.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the run
    harness converts simulation errors into verdicts, but a crash is
    control flow — the chaos loop must catch it and recover, and nothing
    else may swallow it.
    """

    def __init__(self, event_index: int) -> None:
        super().__init__(f"injected crash at event {event_index}")
        self.event_index = event_index


class FaultKind(enum.Enum):
    """Vocabulary of injectable faults (see docs/RESILIENCE.md)."""

    CRASH = "crash"
    SITE_CRASH = "site-crash"
    PARTITION = "partition"
    MESSAGE_DROP = "message-drop"
    MESSAGE_DUPLICATE = "message-duplicate"
    MESSAGE_DELAY = "message-delay"
    COPY_POP_FAILURE = "copy-pop"
    UNDO_APPLY_FAILURE = "undo-apply"
    TXN_STALL = "txn-stall"

    def __str__(self) -> str:
        return self.value


#: Strategy names whose rollback reads copy stacks (``copy-pop`` faults).
_COPY_STRATEGIES = ("mcs", "single-copy", "sdg", "k-copy")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    ``at`` is the fault's index in its own counting domain: recorded
    trace-event index for crashes and stalls, attempted-send index for
    network faults, rollback-invocation index for storage faults.
    ``arg`` names the victim where one is needed (a transaction id for
    stalls, a site number rendered as a string for site crashes, a group
    spec such as ``"0,2|1,3"`` for partitions — groups separated by
    ``|``, member sites by ``,``) and ``duration`` the outage length in
    recorded events.
    """

    kind: FaultKind
    at: int
    arg: str = ""
    duration: int = 0

    def render(self) -> str:
        return f"{self.kind}@{self.at}:{self.arg}:{self.duration}"

    def to_dict(self) -> dict:
        return {
            "kind": str(self.kind),
            "at": self.at,
            "arg": self.arg,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            at=int(data["at"]),
            arg=str(data.get("arg", "")),
            duration=int(data.get("duration", 0)),
        )


@dataclass
class FaultPlan:
    """A complete, serialisable fault schedule for one chaos run."""

    seed: int
    events: list[FaultEvent] = field(default_factory=list)
    #: When False the scheduler propagates storage faults instead of
    #: degrading to a total restart — the regression suite uses this to
    #: pin the failure mode of an undegraded fault.
    degrade: bool = True
    #: Delayed messages are released every this-many recorded events
    #: (reordering them after later traffic).
    flush_every: int = 5

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: int,
        txn_ids: list[str] | None = None,
        n_sites: int = 0,
        crashes: int = 0,
        site_crashes: int = 0,
        partitions: int = 0,
        message_faults: int = 0,
        storage_faults: int = 0,
        stalls: int = 0,
        degrade: bool = True,
    ) -> "FaultPlan":
        """Draw a schedule from one seed.

        ``horizon`` bounds every index: crash/stall events are placed in
        ``[1, horizon)`` recorded events, message faults over the first
        ``horizon`` attempted sends, storage faults over the first
        ``max(4, horizon // 20)`` rollback invocations (rollbacks are far
        rarer than steps).  Counts request *at most* that many faults;
        colliding draws merge.
        """
        if horizon < 2:
            raise ValueError("horizon must be at least 2")
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(FaultKind.CRASH, rng.randrange(1, horizon))
            )
        for _ in range(site_crashes):
            if n_sites < 1:
                break
            events.append(
                FaultEvent(
                    FaultKind.SITE_CRASH,
                    rng.randrange(1, horizon),
                    arg=str(rng.randrange(n_sites)),
                    duration=rng.randrange(2, 12),
                )
            )
        for _ in range(partitions):
            if n_sites < 2:
                break
            # A random two-group split: each site joins group 0 or 1,
            # re-drawn until both groups are inhabited.
            while True:
                split = [rng.randrange(2) for _ in range(n_sites)]
                if 0 < sum(split) < n_sites:
                    break
            groups = [
                ",".join(
                    str(s) for s in range(n_sites) if split[s] == side
                )
                for side in (0, 1)
            ]
            events.append(
                FaultEvent(
                    FaultKind.PARTITION,
                    rng.randrange(1, horizon),
                    arg="|".join(groups),
                    duration=rng.randrange(4, 20),
                )
            )
        message_kinds = (
            FaultKind.MESSAGE_DROP,
            FaultKind.MESSAGE_DUPLICATE,
            FaultKind.MESSAGE_DELAY,
        )
        for _ in range(message_faults):
            events.append(
                FaultEvent(
                    rng.choice(message_kinds), rng.randrange(horizon)
                )
            )
        rollback_horizon = max(4, horizon // 20)
        storage_kinds = (
            FaultKind.COPY_POP_FAILURE,
            FaultKind.UNDO_APPLY_FAILURE,
        )
        for _ in range(storage_faults):
            events.append(
                FaultEvent(
                    rng.choice(storage_kinds),
                    rng.randrange(rollback_horizon),
                )
            )
        for _ in range(stalls):
            if not txn_ids:
                break
            events.append(
                FaultEvent(
                    FaultKind.TXN_STALL,
                    rng.randrange(1, horizon),
                    arg=rng.choice(sorted(txn_ids)),
                    duration=rng.randrange(2, 10),
                )
            )
        events.sort(key=lambda e: (e.at, str(e.kind), e.arg))
        return cls(seed=seed, events=events, degrade=degrade)

    # -- queries --------------------------------------------------------------

    def of_kind(self, *kinds: FaultKind) -> list[FaultEvent]:
        return [e for e in self.events if e.kind in kinds]

    def crash_indices(self) -> list[int]:
        """Recorded-event indices at which the scheduler crashes."""
        return sorted({e.at for e in self.of_kind(FaultKind.CRASH)})

    @property
    def empty(self) -> bool:
        return not self.events

    def fingerprint(self) -> str:
        """Content hash: identical seed and knobs ⇒ identical hash."""
        digest = hashlib.sha256()
        digest.update(
            f"seed={self.seed};degrade={self.degrade};"
            f"flush={self.flush_every}\n".encode()
        )
        for event in self.events:
            digest.update(event.render().encode())
            digest.update(b"\n")
        return digest.hexdigest()

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "degrade": self.degrade,
            "flush_every": self.flush_every,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            events=[
                FaultEvent.from_dict(e) for e in data.get("events", [])
            ],
            degrade=bool(data.get("degrade", True)),
            flush_every=int(data.get("flush_every", 5)),
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` against live engines.

    One injector serves one chaos *run*, which may span several engines
    (one per crash segment): global counters survive re-attachment, so
    plan indices always refer to run-global positions.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events_seen = 0
        self.sends_seen = 0
        self.rollbacks_seen = 0
        self.crashes_fired = 0
        self._crash_at = set(plan.crash_indices())
        self._message_actions: dict[int, DeliveryAction] = {}
        for event in plan.of_kind(FaultKind.MESSAGE_DROP):
            self._message_actions[event.at] = DeliveryAction.DROP
        for event in plan.of_kind(FaultKind.MESSAGE_DUPLICATE):
            self._message_actions[event.at] = DeliveryAction.DUPLICATE
        for event in plan.of_kind(FaultKind.MESSAGE_DELAY):
            self._message_actions[event.at] = DeliveryAction.DELAY
        self._storage_faults: dict[int, FaultKind] = {
            event.at: event.kind
            for event in plan.of_kind(
                FaultKind.COPY_POP_FAILURE, FaultKind.UNDO_APPLY_FAILURE
            )
        }
        self._stall_events = plan.of_kind(FaultKind.TXN_STALL)
        self._site_events = plan.of_kind(FaultKind.SITE_CRASH)
        self._partition_events = plan.of_kind(FaultKind.PARTITION)
        #: txn_id -> recorded-event index at which the stall ends.
        self.stalled_until: dict[str, int] = {}
        #: site -> recorded-event index at which the site comes back up.
        self.down_until: dict[int, int] = {}
        #: The active partition's groups (None when the network is whole).
        self.partition_groups: list[set[int]] | None = None
        #: Recorded-event index at which the active partition heals.
        self._partition_until = -1
        self._scheduler = None

    # -- attachment ---------------------------------------------------------

    def attach(self, engine) -> None:
        """Install every interception point on *engine* (chainable with a
        pre-existing observer, which runs first)."""
        scheduler = engine.scheduler
        scheduler.degrade_on_fault = self.plan.degrade
        scheduler.strategy.fault_hook = self._on_rollback
        message_log = getattr(scheduler, "message_log", None)
        if message_log is not None:
            message_log.fault_filter = self._on_send
        self._message_log = message_log
        previous = engine.on_step

        def observe(eng, event) -> None:
            if previous is not None:
                previous(eng, event)
            self._on_event(eng, event)

        engine.on_step = observe
        wrapper = _StallAwareInterleaving(engine.interleaving, self)
        if getattr(scheduler, "partition", None) is not None:
            # Bind the *scheduler*, not its current partition object:
            # view changes replace scheduler.partition mid-run and the
            # wrapper must follow the live topology.
            wrapper.bind_scheduler(scheduler)
        engine.interleaving = wrapper
        self._scheduler = scheduler
        self._sync_scheduler(scheduler)

    def _sync_scheduler(self, scheduler) -> None:
        """Replay standing outages onto a freshly attached scheduler.

        After a crash the recovery loop builds a new scheduler; sites
        still inside an outage window and a still-active partition must
        be visible to it from its first step.
        """
        site_failed = getattr(scheduler, "site_failed", None)
        if site_failed is not None:
            for site in sorted(self.down_until):
                site_failed(site)
        if self.partition_groups is not None:
            on_partition = getattr(scheduler, "on_partition", None)
            if on_partition is not None:
                on_partition(self.partition_groups)

    # -- interception points ---------------------------------------------------

    def _on_event(self, engine, event) -> None:
        """Per recorded trace event: stalls, site outages, delayed-message
        release, and — last, so all bookkeeping is crash-consistent — the
        scheduler crash itself."""
        index = self.events_seen
        self.events_seen += 1
        scheduler = engine.scheduler
        for fault in self._stall_events:
            if fault.at == index:
                self.stalled_until[fault.arg] = index + fault.duration
        for fault in self._site_events:
            if fault.at == index:
                self.down_until[int(fault.arg)] = index + fault.duration
                hook = getattr(scheduler, "site_failed", None)
                if hook is not None:
                    hook(int(fault.arg))
        for fault in self._partition_events:
            if fault.at == index:
                self.partition_groups = _parse_groups(fault.arg)
                self._partition_until = index + fault.duration
                hook = getattr(scheduler, "on_partition", None)
                if hook is not None:
                    hook(self.partition_groups)
        for txn_id, until in list(self.stalled_until.items()):
            if until <= index:
                del self.stalled_until[txn_id]
        for site, until in list(self.down_until.items()):
            if until <= index:
                del self.down_until[site]
                hook = getattr(scheduler, "site_recovered", None)
                if hook is not None:
                    hook(site)
        if self.partition_groups is not None and self._partition_until <= index:
            self.partition_groups = None
            self._partition_until = -1
            hook = getattr(scheduler, "on_heal", None)
            if hook is not None:
                hook()
        if (
            self._message_log is not None
            and self._message_log.pending_delayed
            and index % self.plan.flush_every == 0
        ):
            self._message_log.flush_delayed()
        if index in self._crash_at:
            self.crashes_fired += 1
            raise CrashSignal(index)

    def _on_send(self, _log_index: int, message: Message) -> DeliveryAction:
        """MessageLog fault filter; run-global send index, down-site
        partitions win over planned per-send faults."""
        index = self.sends_seen
        self.sends_seen += 1
        if (
            message.sender in self.down_until
            or message.receiver in self.down_until
        ):
            return DeliveryAction.DROP
        if self.partition_groups is not None and not _same_group(
            self.partition_groups, message.sender, message.receiver
        ):
            return DeliveryAction.DROP
        return self._message_actions.get(index, DeliveryAction.DELIVER)

    def _on_rollback(self, strategy, txn, ordinal) -> None:
        """Strategy fault hook: fail the matching rollback invocations."""
        index = self.rollbacks_seen
        self.rollbacks_seen += 1
        kind = self._storage_faults.get(index)
        if kind is None:
            return
        if kind is FaultKind.COPY_POP_FAILURE and any(
            strategy.name.startswith(prefix) for prefix in _COPY_STRATEGIES
        ):
            raise StorageFault(
                f"injected copy-stack pop failure for {txn.txn_id} "
                f"(rollback #{index} to lock state {ordinal})"
            )
        if (
            kind is FaultKind.UNDO_APPLY_FAILURE
            and strategy.name == "undo-log"
        ):
            raise StorageFault(
                f"injected undo-log apply failure for {txn.txn_id} "
                f"(rollback #{index} to lock state {ordinal})"
            )

    # -- stall queries ------------------------------------------------------

    def blocked_txns(self, partition=None) -> set[str]:
        """Transactions that must not be scheduled right now: explicitly
        stalled ones, plus (given a partition) those homed on down sites."""
        blocked = set(self.stalled_until)
        if partition is not None and self.down_until:
            for txn_id, home in partition.home_sites.items():
                if home in self.down_until:
                    blocked.add(txn_id)
        return blocked


def _parse_groups(arg: str) -> list[set[int]]:
    """Parse a partition group spec such as ``"0,2|1,3"``."""
    groups = [
        {int(site) for site in part.split(",") if site != ""}
        for part in arg.split("|")
        if part != ""
    ]
    if len(groups) < 2:
        raise ValueError(
            f"partition spec {arg!r} must name at least two groups"
        )
    return groups


def _same_group(groups: list[set[int]], a: int, b: int) -> bool:
    """Whether two sites can talk under *groups* (sites not named in any
    group are unreachable from everyone — they sit outside the spec)."""
    if a == b:
        return True
    for group in groups:
        if a in group:
            return b in group
    return False


class _StallAwareInterleaving:
    """Wraps an interleaving policy to skip stalled transactions.

    Falls back to the unfiltered runnable set when stalls would leave
    nothing to schedule — a stall yields to competitors, it never wedges
    the run.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.scheduler = None
        self.name = f"stall-aware({inner.name})"

    def bind_scheduler(self, scheduler) -> None:
        self.scheduler = scheduler

    @property
    def partition(self):
        """The scheduler's *current* partition (view changes swap it)."""
        if self.scheduler is None:
            return None
        return getattr(self.scheduler, "partition", None)

    def choose(self, runnable, step):
        blocked = self.injector.blocked_txns(self.partition)
        if blocked:
            active = [t for t in runnable if t not in blocked]
            if active:
                return self.inner.choose(active, step)
        return self.inner.choose(runnable, step)

    def reset(self) -> None:
        self.inner.reset()
