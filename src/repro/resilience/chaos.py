"""The chaos loop: run a workload under injected faults, crash, recover,
and prove the outcome unchanged.

:func:`chaos_run` executes one workload as a sequence of *segments*: an
engine runs under a :class:`~repro.resilience.faults.FaultInjector` and a
:class:`~repro.resilience.recovery.RecoveryManager` until either the
workload completes or an injected :class:`CrashSignal` kills the
scheduler.  On a crash the recovery manager rebuilds the durable state
from checkpoint + WAL redo, the surviving programs are re-registered —
in their original admission order — on a fresh scheduler over the
recovered database, and the next segment resumes with the same injector
(fault indices are run-global).  When the last segment finishes, the
final database state must equal the analytically expected serial state;
anything else raises the ``recovery-equivalence`` verdict.

:func:`crash_recovery_sweep` is the acceptance gate: for every strategy
it runs the fault-free reference, then re-runs the workload with a crash
injected at every recorded event index, checking each recovered run
converges to the same committed final state.

Both entry points are deterministic functions of
``(workload config, workload seed, chaos seed)``:
:meth:`ChaosRunOutcome.fingerprint` folds the fault-plan hash and every
segment's trace hash into one digest, and identical inputs produce the
identical digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ..core.scheduler import Scheduler
from ..errors import ReproError
from ..observability.events import EventKind
from ..simulation.engine import SimulationEngine
from ..simulation.interleaving import RandomInterleaving
from ..simulation.workload import (
    WorkloadConfig,
    expected_final_state,
    generate_workload,
)
from ..storage.database import Database
from ..verification.harness import is_ordered_policy, policy_name
from ..verification.oracles import OracleSuite, OracleViolation, make_oracles
from .faults import CrashSignal, FaultEvent, FaultInjector, FaultKind, FaultPlan
from .recovery import RecoveryManager

#: Name of the post-run chaos verdict (also a ``repro fuzz`` check name).
RECOVERY_EQUIVALENCE = "recovery-equivalence"

#: Step oracles that hold for the distributed scheduler.  ``graph-acyclic``
#: and ``forest`` assume every cycle resolves the moment it forms, and
#: ``cycles-through-requester`` assumes every DEADLOCK event carries the
#: detected cycles; the distributed design (§3.3) deliberately lets
#: cross-site cycles stand until a timestamp rule or wait timeout clears
#: them — and reports timestamp-rule resolutions as cycle-less DEADLOCK
#: events, since no single site ever saw a cycle.  Those three are
#: centralised-only invariants.
DISTRIBUTED_SAFE_CHECKS = (
    "no-commit-loss",
    "lock-table",
    "preemption-order",
    "no-stale-read",
)


@dataclass
class ChaosRunOutcome:
    """One chaos run: its plan, per-segment traces, and the verdict."""

    strategy: str
    policy: str
    plan: FaultPlan
    violation: OracleViolation | None
    committed: list[str]
    final_state: dict
    segment_fingerprints: list[str]
    steps: int
    crashes: int
    metrics_summaries: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None

    @property
    def segments(self) -> int:
        return len(self.segment_fingerprints)

    def fingerprint(self) -> str:
        """One digest over the fault plan and every segment trace —
        identical inputs reproduce it byte-for-byte."""
        digest = hashlib.sha256()
        digest.update(self.plan.fingerprint().encode())
        for segment in self.segment_fingerprints:
            digest.update(segment.encode())
            digest.update(b"\n")
        return digest.hexdigest()


@dataclass
class ChaosReport:
    """A whole chaos campaign (several runs, e.g. one per strategy)."""

    outcomes: list[ChaosRunOutcome]
    violations: list[OracleViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def steps(self) -> int:
        return sum(outcome.steps for outcome in self.outcomes)

    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        for outcome in self.outcomes:
            digest.update(outcome.fingerprint().encode())
            digest.update(b"\n")
        return digest.hexdigest()


def _segment_seed(chaos_seed: int, segment: int) -> int:
    """Deterministic per-segment interleaving seed (avoids Python's
    randomised string hashing; plain integer arithmetic only)."""
    return (chaos_seed * 1_000_003 + segment * 7_919 + 12_289) % (2**31)


def _build_scheduler(
    state: dict,
    strategy: str,
    policy,
    partition,
    cross_site_mode: str,
    wait_timeout: int,
    backoff_seed: int,
):
    database = Database(dict(state))
    if partition is None:
        return Scheduler(database, strategy=strategy, policy=policy)
    from ..distributed.scheduler import DistributedScheduler
    from ..distributed.views import View

    if isinstance(partition, View):
        from ..distributed.replication import ReplicatedScheduler

        return ReplicatedScheduler(
            database,
            partition,
            strategy=strategy,
            policy=policy,
            cross_site_mode=cross_site_mode,
            wait_timeout=wait_timeout,
            backoff_seed=backoff_seed,
        )
    return DistributedScheduler(
        database,
        partition,
        strategy=strategy,
        policy=policy,
        cross_site_mode=cross_site_mode,
        wait_timeout=wait_timeout,
        backoff_seed=backoff_seed,
    )


def chaos_run(
    config: WorkloadConfig,
    workload_seed: int,
    chaos_seed: int,
    strategy: str = "mcs",
    policy="ordered-min-cost",
    plan: FaultPlan | None = None,
    crashes: int = 1,
    site_crashes: int = 0,
    partitions: int = 0,
    message_faults: int = 0,
    storage_faults: int = 0,
    stalls: int = 0,
    degrade: bool = True,
    checkpoint_every: int = 25,
    sites: int = 0,
    replicate: int = 0,
    cross_site_mode: str = "wound-wait",
    wait_timeout: int = 200,
    checks: str | list[str] = "all",
    max_steps: int = 200_000,
    livelock_window: int = 20_000,
    horizon: int | None = None,
    instrument: Callable[[SimulationEngine], None] | None = None,
) -> ChaosRunOutcome:
    """Run one workload under one fault plan, recovering across crashes.

    With ``plan=None`` the plan is generated from ``chaos_seed`` and the
    fault-count knobs; pass an explicit plan to replay a known schedule
    (the crash sweep and the regression loader do).  ``sites > 0`` runs
    the distributed scheduler over a round-robin partition, exposing the
    network, site-crash, and partition fault kinds; ``replicate >= 1``
    upgrades to the replicated scheduler over a consistent-hash view
    with that replication factor (available copies, read-one /
    write-all-available, catch-up before rejoin).  ``instrument`` is
    called with
    each segment's engine before it runs (first in the attach order, so
    an attached observability recorder's bus is live before the recovery
    manager copies it onto the WAL) — the recorder re-attaches across
    crash segments and stitches one continuous event stream.
    """
    database, programs = generate_workload(config, seed=workload_seed)
    expected = expected_final_state(database, programs)
    total_ops = sum(len(p.operations) + 1 for p in programs)
    if plan is None:
        plan = FaultPlan.generate(
            chaos_seed,
            horizon=horizon or max(16, 2 * total_ops),
            txn_ids=[p.txn_id for p in programs],
            n_sites=sites,
            crashes=crashes,
            site_crashes=site_crashes,
            partitions=partitions,
            message_faults=message_faults,
            storage_faults=storage_faults,
            stalls=stalls,
            degrade=degrade,
        )
    partition = None
    if sites > 0 and replicate > 0:
        from ..distributed.views import hash_view

        partition = hash_view(
            database.snapshot().keys(), programs, sites, rf=replicate
        )
    elif sites > 0:
        from ..distributed.partition import round_robin_partition

        partition = round_robin_partition(
            database.snapshot().keys(), programs, sites
        )

    injector = FaultInjector(plan)
    ordered = is_ordered_policy(policy)
    exclusive_only = config.write_ratio >= 1.0
    if sites > 0 and checks == "all":
        checks = list(DISTRIBUTED_SAFE_CHECKS)

    state = database.snapshot()
    survivors = list(programs)
    committed: list[str] = []
    segment_fingerprints: list[str] = []
    metrics_summaries: list[dict] = []
    steps = 0
    final_state: dict = dict(state)
    violation: OracleViolation | None = None
    livelocked = False
    # Every segment ends in either completion or one planned crash, so
    # the loop is bounded by the number of planned crashes (+1 for the
    # final segment; +1 slack for a crash index never reached).
    max_segments = len(plan.crash_indices()) + 2

    for segment in range(max_segments):
        scheduler = _build_scheduler(
            state, strategy, policy, partition, cross_site_mode,
            wait_timeout, backoff_seed=_segment_seed(chaos_seed, segment),
        )
        suite = OracleSuite(
            make_oracles(
                checks,
                exclusive_only=exclusive_only,
                ordered_policy=ordered,
            )
        )
        engine = SimulationEngine(
            scheduler,
            RandomInterleaving(seed=_segment_seed(chaos_seed, segment)),
            max_steps=max_steps,
            livelock_window=livelock_window,
            stop_on_livelock=True,
            on_step=suite,
        )
        if instrument is not None:
            instrument(engine)
        recovery = RecoveryManager(survivors, checkpoint_every)
        recovery.attach(engine)
        injector.attach(engine)  # last: crash fires after WAL bookkeeping
        for program in survivors:
            engine.add(program)
        try:
            result = engine.run()
        except CrashSignal:
            if scheduler.bus:
                scheduler.bus.publish(
                    EventKind.CRASH,
                    segment=segment,
                    at=len(engine.trace),
                )
            segment_fingerprints.append(engine.trace.fingerprint())
            metrics_summaries.append(scheduler.metrics.summary())
            steps += len(engine.trace)
            recovered = recovery.recover()
            committed.extend(recovered.committed)
            state = recovered.state
            survivors = recovered.survivors
            final_state = dict(state)
            if not survivors:
                break
            continue
        except OracleViolation as exc:
            violation = exc
            segment_fingerprints.append(engine.trace.fingerprint())
            steps += len(engine.trace)
            break
        except ReproError as exc:
            violation = OracleViolation("engine", str(exc))
            segment_fingerprints.append(engine.trace.fingerprint())
            steps += len(engine.trace)
            break
        segment_fingerprints.append(engine.trace.fingerprint())
        metrics_summaries.append(scheduler.metrics.summary())
        steps += len(engine.trace)
        committed.extend(result.committed)
        final_state = result.final_state
        livelocked = result.livelock_detected
        break
    else:
        violation = OracleViolation(
            "engine",
            f"chaos loop exceeded {max_segments} segments without "
            f"completing (crash indices {plan.crash_indices()})",
        )

    if violation is None and livelocked and ordered:
        violation = OracleViolation(
            "livelock-free",
            f"livelock under order-respecting policy "
            f"{policy_name(policy)!r} during chaos run "
            f"(seed {chaos_seed})",
        )
    if violation is None and final_state != expected:
        diff = {
            name: (final_state.get(name), value)
            for name, value in expected.items()
            if final_state.get(name) != value
        }
        violation = OracleViolation(
            RECOVERY_EQUIVALENCE,
            f"post-recovery final state diverges from the fault-free "
            f"serial state under {strategy!r} (chaos seed {chaos_seed}, "
            f"{injector.crashes_fired} crash(es)): (got, want) per "
            f"entity {diff}",
        )
    return ChaosRunOutcome(
        strategy=strategy,
        policy=policy_name(policy),
        plan=plan,
        violation=violation,
        committed=committed,
        final_state=final_state,
        segment_fingerprints=segment_fingerprints,
        steps=steps,
        crashes=injector.crashes_fired,
        metrics_summaries=metrics_summaries,
    )


def crash_recovery_sweep(
    config: WorkloadConfig,
    workload_seed: int,
    strategies: tuple[str, ...] = (
        "mcs", "single-copy", "k-copy:2", "undo-log", "total"
    ),
    policy="ordered-min-cost",
    chaos_seed: int = 0,
    checkpoint_every: int = 10,
    every: int = 1,
    sites: int = 0,
    replicate: int = 0,
    cross_site_mode: str = "wound-wait",
    checks: str | list[str] = "all",
    max_steps: int = 200_000,
    deadline=None,
) -> ChaosReport:
    """Crash at *every* recorded event index, for every strategy.

    The fault-free reference run fixes the number of recorded events N;
    the sweep then replays the workload N times per strategy with a
    single crash planted at event k (k = 0, ``every``, 2·``every``, …),
    asserting each recovered run reaches the fault-free committed final
    state.  ``deadline`` (a no-argument callable returning True when the
    budget is spent) lets CI cap the sweep without losing determinism of
    whatever prefix did run.
    """
    outcomes: list[ChaosRunOutcome] = []
    violations: list[OracleViolation] = []
    for strategy in strategies:
        reference = chaos_run(
            config,
            workload_seed,
            chaos_seed,
            strategy=strategy,
            policy=policy,
            plan=FaultPlan(seed=chaos_seed, events=[]),
            checkpoint_every=checkpoint_every,
            sites=sites,
            replicate=replicate,
            cross_site_mode=cross_site_mode,
            checks=checks,
            max_steps=max_steps,
        )
        outcomes.append(reference)
        if reference.violation is not None:
            violations.append(reference.violation)
            continue
        n_events = reference.steps
        for k in range(0, n_events, max(1, every)):
            if deadline is not None and deadline():
                break
            outcome = chaos_run(
                config,
                workload_seed,
                chaos_seed,
                strategy=strategy,
                policy=policy,
                plan=FaultPlan(
                    seed=chaos_seed,
                    events=[FaultEvent(FaultKind.CRASH, k)],
                ),
                checkpoint_every=checkpoint_every,
                sites=sites,
                replicate=replicate,
                cross_site_mode=cross_site_mode,
                checks=checks,
                max_steps=max_steps,
            )
            outcomes.append(outcome)
            if outcome.violation is not None:
                violations.append(outcome.violation)
            elif outcome.final_state != reference.final_state:
                violations.append(
                    OracleViolation(
                        RECOVERY_EQUIVALENCE,
                        f"crash at event {k} under {strategy!r} recovered "
                        f"to a different final state than the fault-free "
                        f"run",
                    )
                )
    return ChaosReport(outcomes=outcomes, violations=violations)


def recovery_equivalence_check(
    config: WorkloadConfig,
    workload_seed: int,
    chaos_seed: int,
    strategy: str = "mcs",
    policy="ordered-min-cost",
    sample: int = 3,
    checkpoint_every: int = 10,
    max_steps: int = 200_000,
) -> OracleViolation | None:
    """Sampled crash-recovery equivalence (the fuzzer's post-run check).

    Runs the fault-free reference, then ``sample`` crash points spread
    evenly across the recorded events; returns the first violation found
    or ``None``.  Much cheaper than the full sweep while still exercising
    early, middle, and late crash points every round.
    """
    reference = chaos_run(
        config,
        workload_seed,
        chaos_seed,
        strategy=strategy,
        policy=policy,
        plan=FaultPlan(seed=chaos_seed, events=[]),
        checkpoint_every=checkpoint_every,
        max_steps=max_steps,
    )
    if reference.violation is not None:
        return reference.violation
    n_events = reference.steps
    if n_events < 2 or sample < 1:
        return None
    points = sorted(
        {
            1 + (i * (n_events - 1)) // max(1, sample)
            for i in range(sample)
        }
    )
    for k in points:
        outcome = chaos_run(
            config,
            workload_seed,
            chaos_seed,
            strategy=strategy,
            policy=policy,
            plan=FaultPlan(
                seed=chaos_seed, events=[FaultEvent(FaultKind.CRASH, k)]
            ),
            checkpoint_every=checkpoint_every,
            max_steps=max_steps,
        )
        if outcome.violation is not None:
            return outcome.violation
        if outcome.final_state != reference.final_state:
            return OracleViolation(
                RECOVERY_EQUIVALENCE,
                f"crash at event {k} under {strategy!r} recovered to a "
                f"different final state than the fault-free run",
            )
    return None
