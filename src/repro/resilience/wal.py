"""Write-ahead event log and checkpoints for crash recovery.

The simulated system's durable state is the global database; everything
else — the lock table, transaction program counters, the strategies' local
copies — is volatile and lost when the scheduler crashes.
:class:`WriteAheadLog` records, ahead of each state change, the events
needed to reconstruct the durable state at any crash point:

* ``GRANT`` — a lock was granted (diagnostic; not needed for redo),
* ``INSTALL`` — a value was installed into the global database,
* ``COMMIT`` — a transaction committed (its installs become durable),
* ``ROLLBACK`` — a transaction was rolled back (diagnostic).

Recovery follows the classic redo discipline: start from the latest
checkpoint snapshot, scan the log suffix for ``COMMIT`` records to learn
which transactions finished, then replay — in log order — every
``INSTALL`` belonging to a committed transaction.  Installs of
transactions still in flight at the crash are discarded; those
transactions restart from their programs (the degradation ladder's total
restart), which is always safe because an in-flight transaction's effects
live only in its local copies until commit-time installation.

With commit-time installation (the generated workloads' discipline — no
explicit unlocks) every checkpoint snapshot is action-consistent and
recovery is exact.  Workloads that unlock (and therefore install) before
commit can expose dirty pre-commit values to later readers; recovery then
discards the uncommitted install while a committed reader may have used
it — the classic cascading-abort anomaly strict schedulers exist to
prevent.  The recovery-equivalence oracle will report exactly such
divergences.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any

from ..observability.events import NULL_BUS, EventBus, EventKind

Value = Any


class WalKind(enum.Enum):
    """Vocabulary of logged events."""

    GRANT = "grant"
    INSTALL = "install"
    COMMIT = "commit"
    ROLLBACK = "rollback"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class WalRecord:
    """One logged event; the log sequence number is the list position."""

    kind: WalKind
    txn_id: str
    entity: str = ""
    value: Value = None
    target: int = -1

    def render(self) -> str:
        return (
            f"{self.kind}:{self.txn_id}:{self.entity}:{self.value!r}:"
            f"{self.target}"
        )


@dataclass(frozen=True)
class Checkpoint:
    """A snapshot of the durable state at one log position.

    ``lsn`` is the index of the first log record *not* reflected in the
    snapshot; recovery replays records from ``lsn`` onward.
    """

    step: int
    lsn: int
    state: dict
    committed: tuple[str, ...]


class WriteAheadLog:
    """Append-only event log plus periodic checkpoints.

    Parameters
    ----------
    initial_state:
        The database snapshot at the moment logging starts — the recovery
        base when no checkpoint has been taken yet.
    """

    def __init__(self, initial_state: dict) -> None:
        self.records: list[WalRecord] = []
        self.checkpoints: list[Checkpoint] = []
        self._initial_state = dict(initial_state)
        #: Observability bus (the recovery manager installs the
        #: scheduler's live bus when one is attached).
        self.bus: EventBus = NULL_BUS

    # -- logging ------------------------------------------------------------

    def _append(self, record: WalRecord) -> None:
        """The single append path: every logged record lands here, so the
        WAL_APPEND stream is complete by construction."""
        self.records.append(record)
        if self.bus:
            self.bus.publish(
                EventKind.WAL_APPEND,
                record.txn_id,
                lsn=len(self.records) - 1,
                record=str(record.kind),
                entity=record.entity,
                target=record.target,
            )

    def log_grant(self, txn_id: str, entity: str, mode: str) -> None:
        self._append(WalRecord(WalKind.GRANT, txn_id, entity, value=mode))

    def log_install(self, txn_id: str, entity: str, value: Value) -> None:
        self._append(WalRecord(WalKind.INSTALL, txn_id, entity, value=value))

    def log_commit(self, txn_id: str) -> None:
        self._append(WalRecord(WalKind.COMMIT, txn_id))

    def log_rollback(self, txn_id: str, target: int) -> None:
        self._append(WalRecord(WalKind.ROLLBACK, txn_id, target=target))

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self, step: int, state: dict, committed) -> Checkpoint:
        """Record a snapshot of the durable state taken after *step*."""
        point = Checkpoint(
            step=step,
            lsn=len(self.records),
            state=dict(state),
            committed=tuple(committed),
        )
        self.checkpoints.append(point)
        if self.bus:
            self.bus.publish(
                EventKind.WAL_CHECKPOINT,
                lsn=point.lsn,
                at=step,
                committed=sorted(point.committed),
            )
        return point

    def latest_checkpoint(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    # -- recovery -------------------------------------------------------------

    def committed_ids(self) -> set[str]:
        """Every transaction the full log shows as committed."""
        committed = {
            record.txn_id
            for record in self.records
            if record.kind is WalKind.COMMIT
        }
        point = self.latest_checkpoint()
        if point is not None:
            committed.update(point.committed)
        return committed

    def recover_state(self) -> tuple[dict, set[str]]:
        """Rebuild ``(database_state, committed_txn_ids)`` at the log end.

        Starts from the latest checkpoint (or the initial snapshot) and
        redoes the installs of committed transactions in log order;
        installs of in-flight transactions are discarded.
        """
        point = self.latest_checkpoint()
        if point is None:
            state = dict(self._initial_state)
            suffix = self.records
        else:
            state = dict(point.state)
            suffix = self.records[point.lsn:]
        committed = self.committed_ids()
        redone = 0
        for record in suffix:
            if record.kind is WalKind.INSTALL and record.txn_id in committed:
                state[record.entity] = record.value
                redone += 1
        if self.bus:
            self.bus.publish(
                EventKind.WAL_RECOVER,
                from_lsn=0 if point is None else point.lsn,
                records_scanned=len(suffix),
                installs_redone=redone,
                committed=sorted(committed),
            )
        return state, committed

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def fingerprint(self) -> str:
        """Content hash over every record (determinism assertions)."""
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(record.render().encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def render(self, limit: int | None = None) -> str:
        """Human-readable log dump (triage aid)."""
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(
            f"[{i:>5}] {record.render()}" for i, record in enumerate(records)
        )
